//! Skip-list traversal and structure maintenance (paper §3.1, §3.3.1).
//!
//! Invariants relied on throughout:
//!
//! * the level-0 list is the authoritative structure; index levels
//!   (towers) are best-effort shortcuts, fixed up lazily, exactly as in
//!   `ConcurrentSkipListMap`, whose index-level scheme the paper adopts;
//! * traversals never *stand on* a temp split node: encountering one as a
//!   successor triggers helping (rule 1 of §3.1), after which the chain
//!   contains either the real new node or no trace of the split;
//! * a temp split node's `next` pointer is immutable after publication —
//!   nobody unlinks terminated nodes *from* a temp. This closes the
//!   resurrection hazard where a helper would publish the new node with a
//!   stale successor that another thread had meanwhile unlinked;
//! * terminated nodes stay traversable (their `next` is preserved) and are
//!   unlinked opportunistically by every traversal (`findNodeForKey ...
//!   unlinks terminated nodes`, §3.3.2).

use std::sync::atomic::Ordering;

use crossbeam_epoch::{Guard, Shared};
use crossbeam_utils::prefetch_read;
use jiffy_clock::VersionClock;

use crate::inner::{JiffyInner, MapKey, MapValue};
use crate::node::{Node, NodeKey, MAX_HEIGHT};

/// A `(predecessor, successor)` node pair at some index level.
pub(crate) type NodePair<'g, K, V> = (Shared<'g, Node<K, V>>, Shared<'g, Node<K, V>>);

impl<K: MapKey, V: MapValue, C: VersionClock> JiffyInner<K, V, C> {
    /// Find the node whose key range covers `key`. The returned node is
    /// never a temp split node (those are helped away en route); it may
    /// have become terminated by the time the caller looks — callers
    /// revalidate and retry.
    pub(crate) fn find_node_for_key<'g>(
        &self,
        key: &K,
        guard: &'g Guard,
    ) -> Shared<'g, Node<K, V>> {
        perf_count!(descents);
        let pred = self.tower_descend(key, false, guard);
        self.walk_level0(pred, key, guard)
    }

    /// Descend the index levels. With `strict`, stop at nodes whose key is
    /// strictly below `key` (predecessor search); otherwise allow equal
    /// keys (floor search). Unlinks index entries to terminated nodes.
    fn tower_descend<'g>(&self, key: &K, strict: bool, guard: &'g Guard) -> Shared<'g, Node<K, V>> {
        let mut pred_s = self.base_node(guard);
        #[cfg(feature = "perf-counters")]
        let mut hops = 0u64;
        for level in (1..MAX_HEIGHT).rev() {
            loop {
                // SAFETY: non-null and reached under the enclosing pin guard;
                // EBR defers reclamation of epoch-reachable nodes until unpin.
                let pred = unsafe { pred_s.deref() };
                if level > pred.tower_height() {
                    break; // this node does not reach the level; descend
                }
                let curr_s = pred.tower[level - 1].load(Ordering::Acquire, guard);
                if curr_s.is_null() {
                    break;
                }
                // SAFETY: non-null and reached under the enclosing pin guard;
                // EBR defers reclamation of epoch-reachable nodes until unpin.
                let curr = unsafe { curr_s.deref() };
                #[cfg(feature = "perf-counters")]
                {
                    hops += 1;
                }
                // While the key comparison below is in flight, start
                // pulling in the (separately boxed) tower array we will
                // read next if we advance — `curr.tower[level - 1]` on
                // the next iteration, `curr.tower[level - 2]` after a
                // descend. One hop of pointer-chase latency hidden per
                // advance (the "Foresight" overlap).
                if let Some(slot) = curr.tower.get(level.saturating_sub(2)) {
                    prefetch_read(slot as *const _);
                }
                if curr.is_terminated() {
                    // Unlink the index entry and re-read.
                    let succ = if level <= curr.tower_height() {
                        curr.tower[level - 1].load(Ordering::Acquire, guard)
                    } else {
                        Shared::null()
                    };
                    let _ = pred.tower[level - 1].compare_exchange(
                        curr_s,
                        succ,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        guard,
                    );
                    continue;
                }
                let advance = match (&curr.key, strict) {
                    (NodeKey::NegInf, _) => true,
                    (NodeKey::Key(k), false) => k <= key,
                    (NodeKey::Key(k), true) => k < key,
                };
                if advance {
                    pred_s = curr_s;
                } else {
                    break;
                }
            }
        }
        #[cfg(feature = "perf-counters")]
        crate::counters::bump(|c| c.nodes_visited += hops);
        pred_s
    }

    /// Level-0 walk from `start` to the floor node for `key`, helping temp
    /// split nodes and unlinking terminated nodes on the way.
    fn walk_level0<'g>(
        &self,
        start: Shared<'g, Node<K, V>>,
        key: &K,
        guard: &'g Guard,
    ) -> Shared<'g, Node<K, V>> {
        let mut node_s = start;
        #[cfg(feature = "perf-counters")]
        let mut hops = 0u64;
        loop {
            // SAFETY: non-null and reached under the enclosing pin guard;
            // EBR defers reclamation of epoch-reachable nodes until unpin.
            let node = unsafe { node_s.deref() };
            let next_s = node.next.load(Ordering::Acquire, guard);
            if next_s.is_null() {
                break;
            }
            // SAFETY: non-null and reached under the enclosing pin guard;
            // EBR defers reclamation of epoch-reachable nodes until unpin.
            let next = unsafe { next_s.deref() };
            // `next`'s cache line was the miss we just paid. Before the
            // branchy checks and the key comparison on it, start pulling
            // in the two lines the walk touches right after: `next`'s own
            // successor (the following hop) and `next`'s head revision
            // (what the caller reads once the walk stops here). Both
            // pointers live in the line we already hold, so the loads
            // are free and the misses overlap the comparison.
            prefetch_read(next.next.load(Ordering::Relaxed, guard).as_raw());
            prefetch_read(next.head.load(Ordering::Relaxed, guard).as_raw());
            if next.is_temp_split() {
                self.help_temp_split_node(node_s, next_s, guard);
                continue; // re-read node.next
            }
            if next.is_terminated() {
                // Unlink (never from a temp: we never stand on temps).
                let succ = next.next.load(Ordering::Acquire, guard);
                let _ = node.next.compare_exchange(
                    next_s,
                    succ,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    guard,
                );
                continue;
            }
            if next.key.le(key) {
                #[cfg(feature = "perf-counters")]
                {
                    hops += 1;
                }
                node_s = next_s;
            } else {
                break;
            }
        }
        #[cfg(feature = "perf-counters")]
        crate::counters::bump(|c| c.nodes_visited += hops);
        node_s
    }

    /// Find the live level-0 predecessor of `target` (`pred.next ==
    /// target`). Returns `None` once `target` is unlinked (used as the
    /// completion condition by merge helpers). Helps temp split nodes and
    /// unlinks terminated nodes (including a terminated `target`).
    pub(crate) fn find_pred<'g>(
        &self,
        target_s: Shared<'g, Node<K, V>>,
        guard: &'g Guard,
    ) -> Option<Shared<'g, Node<K, V>>> {
        // SAFETY: non-null and reached under the enclosing pin guard;
        // EBR defers reclamation of epoch-reachable nodes until unpin.
        let target = unsafe { target_s.deref() };
        let tkey = target.key.as_key().expect("the base node has no predecessor and never merges");
        let mut node_s = self.tower_descend(tkey, true, guard);
        loop {
            // SAFETY: non-null and reached under the enclosing pin guard;
            // EBR defers reclamation of epoch-reachable nodes until unpin.
            let node = unsafe { node_s.deref() };
            let next_s = node.next.load(Ordering::Acquire, guard);
            if next_s.is_null() {
                return None;
            }
            // SAFETY: non-null and reached under the enclosing pin guard;
            // EBR defers reclamation of epoch-reachable nodes until unpin.
            let next = unsafe { next_s.deref() };
            if next.is_temp_split() {
                self.help_temp_split_node(node_s, next_s, guard);
                continue;
            }
            if next.is_terminated() {
                let succ = next.next.load(Ordering::Acquire, guard);
                let _ = node.next.compare_exchange(
                    next_s,
                    succ,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    guard,
                );
                continue;
            }
            if next_s == target_s {
                return Some(node_s);
            }
            match &next.key {
                NodeKey::NegInf => unreachable!("base node cannot be a successor"),
                NodeKey::Key(k) if k < tkey => node_s = next_s,
                // A live node at/past the target's key that is not the
                // target: the target has been unlinked.
                _ => return None,
            }
        }
    }

    /// Link a freshly published node into the index levels (tower heights
    /// `1..=node.tower_height()`). Cooperates with concurrent termination:
    /// after every successful link the terminated flag is re-checked, and
    /// the linker undoes its own work if the node died (see the unlink
    /// protocol in `unlink_tower`).
    pub(crate) fn link_tower<'g>(&self, node_s: Shared<'g, Node<K, V>>, guard: &'g Guard) {
        // SAFETY: non-null and reached under the enclosing pin guard;
        // EBR defers reclamation of epoch-reachable nodes until unpin.
        let node = unsafe { node_s.deref() };
        let h = node.tower_height();
        if h == 0 {
            return;
        }
        let key = match node.key.as_key() {
            Some(k) => k,
            None => return,
        };
        for level in 1..=h {
            loop {
                if node.is_terminated() {
                    self.unlink_tower(node_s, guard);
                    return;
                }
                let (pred_s, succ_s) = self.tower_position(key, level, node_s, guard);
                // SAFETY: non-null and reached under the enclosing pin guard;
                // EBR defers reclamation of epoch-reachable nodes until unpin.
                let pred = unsafe { pred_s.deref() };
                node.tower[level - 1].store(succ_s, Ordering::Release);
                if pred.tower[level - 1]
                    .compare_exchange(succ_s, node_s, Ordering::AcqRel, Ordering::Acquire, guard)
                    .is_ok()
                {
                    break;
                }
            }
        }
        if node.is_terminated() {
            self.unlink_tower(node_s, guard);
        }
    }

    /// Pred/succ pair for inserting `node` (with key `key`) at `level`.
    /// Skips `node` itself and unlinks terminated entries.
    fn tower_position<'g>(
        &self,
        key: &K,
        level: usize,
        node_s: Shared<'g, Node<K, V>>,
        guard: &'g Guard,
    ) -> NodePair<'g, K, V> {
        let mut pred_s = self.base_node(guard);
        let mut lvl = MAX_HEIGHT;
        while lvl >= level {
            loop {
                // SAFETY: non-null and reached under the enclosing pin guard;
                // EBR defers reclamation of epoch-reachable nodes until unpin.
                let pred = unsafe { pred_s.deref() };
                if lvl > pred.tower_height() {
                    break;
                }
                let curr_s = pred.tower[lvl - 1].load(Ordering::Acquire, guard);
                if curr_s.is_null() {
                    break;
                }
                if curr_s == node_s {
                    // Already linked here (an older attempt of ours):
                    // treat the node's own successor as the bound.
                    break;
                }
                // SAFETY: non-null and reached under the enclosing pin guard;
                // EBR defers reclamation of epoch-reachable nodes until unpin.
                let curr = unsafe { curr_s.deref() };
                if curr.is_terminated() {
                    let succ = if lvl <= curr.tower_height() {
                        curr.tower[lvl - 1].load(Ordering::Acquire, guard)
                    } else {
                        Shared::null()
                    };
                    let _ = pred.tower[lvl - 1].compare_exchange(
                        curr_s,
                        succ,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        guard,
                    );
                    continue;
                }
                let advance = match &curr.key {
                    NodeKey::NegInf => true,
                    NodeKey::Key(k) => k < key,
                };
                if advance {
                    pred_s = curr_s;
                } else {
                    break;
                }
            }
            if lvl == level {
                break;
            }
            lvl -= 1;
        }
        // SAFETY: non-null and reached under the enclosing pin guard;
        // EBR defers reclamation of epoch-reachable nodes until unpin.
        let pred = unsafe { pred_s.deref() };
        let succ_s = pred.tower[level - 1].load(Ordering::Acquire, guard);
        (pred_s, succ_s)
    }

    /// Remove `node` from every index level it might be linked at. Called
    /// by merge completion (before the node's destruction is deferred) and
    /// by a linker that lost the race with termination.
    pub(crate) fn unlink_tower<'g>(&self, node_s: Shared<'g, Node<K, V>>, guard: &'g Guard) {
        // SAFETY: non-null and reached under the enclosing pin guard;
        // EBR defers reclamation of epoch-reachable nodes until unpin.
        let node = unsafe { node_s.deref() };
        let h = node.tower_height();
        if h == 0 {
            return;
        }
        let key = match node.key.as_key() {
            Some(k) => k,
            None => return,
        };
        for level in (1..=h).rev() {
            'retry: loop {
                // Walk the level looking for an edge into `node`.
                let mut pred_s = self.tower_descend_to_level(key, level, guard);
                loop {
                    // SAFETY: non-null and reached under the enclosing pin guard;
                    // EBR defers reclamation of epoch-reachable nodes until unpin.
                    let pred = unsafe { pred_s.deref() };
                    if level > pred.tower_height() {
                        break 'retry;
                    }
                    let curr_s = pred.tower[level - 1].load(Ordering::Acquire, guard);
                    if curr_s.is_null() {
                        break 'retry; // not linked at this level
                    }
                    if curr_s == node_s {
                        let succ = node.tower[level - 1].load(Ordering::Acquire, guard);
                        if pred.tower[level - 1]
                            .compare_exchange(
                                curr_s,
                                succ,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                                guard,
                            )
                            .is_ok()
                        {
                            break 'retry;
                        }
                        continue 'retry;
                    }
                    // SAFETY: non-null and reached under the enclosing pin guard;
                    // EBR defers reclamation of epoch-reachable nodes until unpin.
                    let curr = unsafe { curr_s.deref() };
                    let advance = match &curr.key {
                        NodeKey::NegInf => true,
                        NodeKey::Key(k) => k <= key,
                    };
                    if advance {
                        pred_s = curr_s;
                    } else {
                        break 'retry; // passed the key: not linked here
                    }
                }
            }
        }
    }

    /// Descend to `level` taking strictly-smaller keys (helper for
    /// `unlink_tower`; does not unlink on the way to keep it cheap).
    fn tower_descend_to_level<'g>(
        &self,
        key: &K,
        level: usize,
        guard: &'g Guard,
    ) -> Shared<'g, Node<K, V>> {
        let mut pred_s = self.base_node(guard);
        for lvl in ((level + 1)..MAX_HEIGHT).rev() {
            loop {
                // SAFETY: non-null and reached under the enclosing pin guard;
                // EBR defers reclamation of epoch-reachable nodes until unpin.
                let pred = unsafe { pred_s.deref() };
                if lvl > pred.tower_height() {
                    break;
                }
                let curr_s = pred.tower[lvl - 1].load(Ordering::Acquire, guard);
                if curr_s.is_null() {
                    break;
                }
                // SAFETY: non-null and reached under the enclosing pin guard;
                // EBR defers reclamation of epoch-reachable nodes until unpin.
                let curr = unsafe { curr_s.deref() };
                let advance = match &curr.key {
                    NodeKey::NegInf => true,
                    NodeKey::Key(k) => k < key,
                };
                if advance && !curr.is_terminated() {
                    pred_s = curr_s;
                } else {
                    break;
                }
            }
        }
        pred_s
    }
}
