//! Bounded exponential backoff for the helping loops.
//!
//! Jiffy's helping protocol (§3.3.3) makes every thread that encounters
//! a pending revision drive the owning operation to completion. Under
//! all-shard contention that turns one slow batch into a thundering
//! herd: N threads duplicate the same group installations and slam the
//! same head CAS, and throughput *drops* as threads are added. The fix
//! is an *ownership hint*: the installing thread already publishes its
//! progress (the descriptor's `progress` counter, or the version cell
//! flipping non-negative), so a would-be helper can watch that signal
//! and spin-wait briefly — duplicating work only once the owner looks
//! genuinely stalled.
//!
//! Lock-freedom is preserved because the wait is bounded in both
//! directions: a helper spins at most [`HelpBackoff::MAX_STEP`]
//! exponentially-growing rounds per *observation* (same rival, same
//! progress), after which it helps unconditionally; and re-arming the
//! ramp requires having observed the rival advance, which is itself
//! system-wide progress.

/// Per-call-site exponential backoff state. Create one outside a
/// helping loop and consult [`should_wait`](HelpBackoff::should_wait)
/// each time the loop is about to duplicate another thread's work.
pub(crate) struct HelpBackoff {
    /// Identity + published progress of the rival operation at the last
    /// observation (`None` until the first encounter).
    last: Option<(usize, usize)>,
    /// Current ramp position; spins `1 << step` times per wait.
    step: u32,
}

impl HelpBackoff {
    /// Ramp cap: the final wait spins `1 << MAX_STEP` times, and the
    /// total budget per observation is `2^(MAX_STEP+1) - 2` spin hints
    /// (~a few hundred ns), after which the helper must help.
    const MAX_STEP: u32 = 6;

    pub(crate) fn new() -> Self {
        HelpBackoff { last: None, step: 0 }
    }

    /// About to help the operation identified by `rival` (any stable
    /// address) whose published progress reads `progress`. Returns
    /// `true` after spin-waiting — the caller should re-read shared
    /// state instead of helping, because the owner was recently seen
    /// moving (or has not been given its grace period yet). Returns
    /// `false` once this exact `(rival, progress)` observation has
    /// exhausted the ramp: the owner looks stalled, help now.
    pub(crate) fn should_wait(&mut self, rival: usize, progress: usize) -> bool {
        match self.last {
            Some((r, p)) if r == rival && p == progress => {
                if self.step >= Self::MAX_STEP {
                    return false;
                }
                self.step += 1;
                jiffy_obs::trace_event!(verbose: hint: BackoffRamp, rival, progress);
            }
            _ => {
                // New rival, or the owner advanced since we last looked:
                // restart the ramp (observing progress is what re-arms
                // the wait, so a stalled owner can never starve us).
                self.last = Some((rival, progress));
                self.step = 1;
            }
        }
        for _ in 0..(1u32 << self.step) {
            std::hint::spin_loop();
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stalled_rival_exhausts_the_ramp() {
        let mut b = HelpBackoff::new();
        let mut waits = 0;
        while b.should_wait(0x1000, 7) {
            waits += 1;
            assert!(waits < 64, "budget must be bounded");
        }
        assert_eq!(waits as u32, HelpBackoff::MAX_STEP);
        // Still stalled: no more grace.
        assert!(!b.should_wait(0x1000, 7));
    }

    #[test]
    fn progress_rearms_the_ramp() {
        let mut b = HelpBackoff::new();
        while b.should_wait(0x1000, 1) {}
        // The owner advanced: the helper backs off again.
        assert!(b.should_wait(0x1000, 2));
        // A different rival also restarts the ramp.
        while b.should_wait(0x1000, 2) {}
        assert!(b.should_wait(0x2000, 2));
    }
}
