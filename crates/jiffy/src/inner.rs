//! Shared state of a Jiffy index and lifecycle management.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicIsize, AtomicUsize, Ordering};
use std::time::Instant;

use crossbeam_epoch::{self as epoch, Atomic, Guard, Shared};
use crossbeam_utils::CachePadded;
use jiffy_clock::VersionClock;

use crate::autoscale::ThreadScaleState;
use crate::config::JiffyConfig;
use crate::node::{Node, NodeKey, Revision, MAX_HEIGHT};
use crate::snapshot::SnapRegistry;

/// Key bounds required by [`JiffyMap`](crate::JiffyMap).
pub trait MapKey: Ord + Clone + std::hash::Hash + Send + Sync + 'static {}
impl<T: Ord + Clone + std::hash::Hash + Send + Sync + 'static> MapKey for T {}

/// Value bounds required by [`JiffyMap`](crate::JiffyMap).
pub trait MapValue: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> MapValue for T {}

static NEXT_MAP_ID: AtomicUsize = AtomicUsize::new(1);

thread_local! {
    /// Per-(thread, map) autoscaler bookkeeping (§3.3.6) keyed by map id.
    pub(crate) static SCALE_STATE: RefCell<HashMap<usize, ThreadScaleState>> =
        RefCell::new(HashMap::new());
    /// Per-thread RNG state for tower heights.
    pub(crate) static RNG_STATE: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    /// Per-thread update tick (drives the periodic snapshot-min refresh
    /// without a shared counter on the hot path).
    pub(crate) static TICKS: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
    /// Per-thread stripe index for the entry counter.
    pub(crate) static STRIPE: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

/// Stripes for the approximate entry counter (updates would otherwise
/// serialize every core on one cache line — measurably catastrophic on
/// small machines).
pub(crate) const LEN_STRIPES: usize = 16;

/// The shared internals of a [`JiffyMap`](crate::JiffyMap).
pub(crate) struct JiffyInner<K, V, C> {
    /// The base node (`⊥`): owns range `(-inf, first-split-key)`, carries a
    /// full-height tower, never merges, never removed (§3.1). The pointer
    /// itself never changes.
    pub(crate) base: Atomic<Node<K, V>>,
    pub(crate) clock: C,
    pub(crate) config: JiffyConfig,
    pub(crate) snapshots: SnapRegistry,
    /// Cached lower bound of the minimum registered snapshot version,
    /// refreshed every `config.updates_per_min_scan` updates (per
    /// thread). Monotone non-decreasing; staleness only retains extra
    /// garbage (§3.3.4).
    pub(crate) cached_min: CachePadded<AtomicI64>,
    /// Approximate entry count, striped to avoid a shared hot line (see
    /// [`JiffyMap::len_approx`](crate::JiffyMap::len_approx)).
    pub(crate) len_stripes: Box<[CachePadded<AtomicIsize>]>,
    pub(crate) map_id: usize,
    /// Wall-clock origin for autoscaler timestamps.
    pub(crate) started: Instant,
}

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

impl<K: MapKey, V: MapValue, C: VersionClock> JiffyInner<K, V, C> {
    pub(crate) fn new(clock: C, config: JiffyConfig) -> Self {
        config.validate();
        let base = Node::<K, V>::new_normal(NodeKey::NegInf, MAX_HEIGHT);
        base.head.store(crossbeam_epoch::Owned::new(Revision::initial()), Ordering::Release);
        JiffyInner {
            base: Atomic::new(base),
            clock,
            config,
            snapshots: SnapRegistry::new(),
            cached_min: CachePadded::new(AtomicI64::new(0)),
            len_stripes: (0..LEN_STRIPES).map(|_| CachePadded::new(AtomicIsize::new(0))).collect(),
            map_id: NEXT_MAP_ID.fetch_add(1, Ordering::Relaxed),
            started: Instant::now(),
        }
    }

    /// Process-relative seconds for autoscaler timestamps (f32 precision
    /// is ample: the EMAs clamp weights to (0, 1]).
    #[inline]
    pub(crate) fn now_secs(&self) -> f32 {
        self.started.elapsed().as_secs_f32()
    }

    /// Adjust the approximate entry count (per-thread stripe).
    #[inline]
    pub(crate) fn add_len(&self, delta: isize) {
        if delta == 0 {
            return;
        }
        let stripe = STRIPE.with(|s| {
            let mut v = s.get();
            if v == usize::MAX {
                v = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % LEN_STRIPES;
                s.set(v);
            }
            v
        });
        self.len_stripes[stripe].fetch_add(delta, Ordering::Relaxed);
    }

    /// Sum of the entry-count stripes.
    pub(crate) fn len_estimate(&self) -> isize {
        self.len_stripes.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }

    #[inline]
    pub(crate) fn base_node<'g>(&self, guard: &'g Guard) -> Shared<'g, Node<K, V>> {
        self.base.load(Ordering::Acquire, guard)
    }

    /// Random tower height using the thread-local xorshift state.
    pub(crate) fn random_height(&self) -> usize {
        RNG_STATE.with(|s| {
            let mut state = s.get();
            if state == 0 {
                // Seed from the thread's stack address + time; quality is
                // irrelevant beyond decorrelating threads.
                let x = &state as *const _ as u64;
                state = x ^ (Instant::now().elapsed().as_nanos() as u64) ^ 0x9E37_79B9_7F4A_7C15;
                if state == 0 {
                    state = 0x2545_F491_4F6C_DD1D;
                }
            }
            let h = crate::node::random_height(&mut state);
            s.set(state);
            h
        })
    }

    /// Read-side fold throttle: true once per `reads_per_stats_update`
    /// reads on this thread ("reader threads update the moving averages
    /// only every 100 read operations", §3.3.6). The weight itself comes
    /// from the node's read gap.
    pub(crate) fn read_fold_due(&self) -> bool {
        SCALE_STATE.with(|m| {
            let mut m = m.borrow_mut();
            let st = m.entry(self.map_id).or_default();
            st.reads_since_fold += 1;
            if st.reads_since_fold >= self.config.reads_per_stats_update {
                st.reads_since_fold = 0;
                true
            } else {
                false
            }
        })
    }

    /// Periodic refresh of the cached minimum snapshot version; the cache
    /// only moves forward (a stale value is a safe lower bound). Counted
    /// per thread so the hot path touches no shared line.
    pub(crate) fn bump_update_tick(&self) {
        let due = TICKS.with(|t| {
            let v = t.get().wrapping_add(1);
            t.set(v);
            v % self.config.updates_per_min_scan == 0
        });
        if due {
            let min = self.snapshots.min_version(&self.clock);
            self.cached_min.fetch_max(min, Ordering::AcqRel);
        }
    }

    #[inline]
    pub(crate) fn gc_floor(&self) -> i64 {
        self.cached_min.load(Ordering::Acquire)
    }
}

impl<K, V, C> Drop for JiffyInner<K, V, C> {
    fn drop(&mut self) {
        // SAFETY: exclusive access — no concurrent operations can exist
        // (public ops borrow the map, and we hold `&mut self`). Walk the
        // level-0 list and free every node and every revision reachable
        // through *owning* edges (see node.rs).
        let guard = unsafe { epoch::unprotected() };
        unsafe {
            let mut node_s = self.base.load(Ordering::Relaxed, guard);
            while !node_s.is_null() {
                let node = node_s.deref();
                let next = node.next.load(Ordering::Relaxed, guard);
                let head = node.head.load(Ordering::Relaxed, guard);
                if !head.is_null() {
                    destroy_chain_now::<K, V>(head, guard);
                }
                drop(node_s.into_owned());
                node_s = next;
            }
        }
    }
}

/// Immediately destroy a revision chain, following owning edges only.
///
/// # Safety
/// Caller must have exclusive access to the chain (map teardown).
pub(crate) unsafe fn destroy_chain_now<K, V>(start: Shared<'_, Revision<K, V>>, guard: &Guard) {
    let mut work = vec![start];
    while let Some(rev_s) = work.pop() {
        if rev_s.is_null() {
            continue;
        }
        // SAFETY: the caller has exclusive access to the chain (fn
        // contract), so the revision is alive and unaliased.
        let rev = unsafe { rev_s.deref() };
        if rev.owns_next() {
            work.push(rev.next.load(Ordering::Relaxed, guard));
        }
        if let Some(mi) = rev.as_merge() {
            work.push(mi.right_next.load(Ordering::Relaxed, guard));
        }
        // SAFETY: exclusive access (fn contract) — take ownership and free.
        drop(unsafe { rev_s.into_owned() });
    }
}

/// Defer destruction of a revision chain after it has been unlinked by a
/// GC cut (the caller won the truncation swap).
///
/// Each onward edge is *claimed* by atomically swapping it to null before
/// following it. Two GC passes over the same node can race: one severs
/// the list high up while the other, holding an older floor, severs (and
/// starts destroying from) a point inside the already-severed region.
/// The per-edge swap guarantees every revision is deferred by exactly one
/// walker — whoever nulled its owning in-edge.
///
/// # Safety
/// The chain must be unreachable for new readers; `guard` keeps it alive
/// for current ones.
pub(crate) unsafe fn defer_destroy_chain<K: MapKey, V: MapValue>(
    start: Shared<'_, Revision<K, V>>,
    guard: &Guard,
) {
    let mut work = vec![start];
    while let Some(rev_s) = work.pop() {
        if rev_s.is_null() {
            continue;
        }
        // SAFETY: non-null and reached under the enclosing pin guard;
        // EBR defers reclamation of epoch-reachable nodes until unpin.
        let rev = unsafe { rev_s.deref() };
        if rev.owns_next() {
            work.push(rev.next.swap(Shared::null(), Ordering::AcqRel, guard));
        }
        if let Some(mi) = rev.as_merge() {
            work.push(mi.right_next.swap(Shared::null(), Ordering::AcqRel, guard));
        }
        // SAFETY: unlinked from the structure above, so no new reader
        // can reach it; already-pinned readers hold it until they unpin.
        unsafe { guard.defer_destroy(rev_s) };
    }
}

// SAFETY: all shared state is accessed through atomics/epoch pointers; the
// contained K/V are required to be Send + Sync via Map bounds.
unsafe impl<K: Send + Sync, V: Send + Sync, C: Send + Sync> Send for JiffyInner<K, V, C> {}
unsafe impl<K: Send + Sync, V: Send + Sync, C: Send + Sync> Sync for JiffyInner<K, V, C> {}
