//! The node split protocol (paper §3.3.1, Figure 3).
//!
//! Splitting node *k* towards a new node *o* (inheriting the upper half of
//! *k*'s range):
//!
//! 1. build a left/right split revision pair (`lsr`, `rsr`) sharing one
//!    version cell; both point at the pre-split revision (only `lsr`'s
//!    edge owns it);
//! 2. CAS `lsr` in as the head of *k*'s revision list — from here the
//!    split is visible and every thread that meets it must help (rule 1);
//! 3. CAS a *temp split node* (key = split key, next = *k*'s successor)
//!    into the level-0 list after *k*;
//! 4. build the real node *o* with `rsr` as its sole revision and CAS it
//!    in place of the temp node;
//! 5. publish the final version into the shared cell (done by the caller
//!    through the usual finalize path) and link *o*'s tower.
//!
//! The temp node exists to defuse the ABA the paper describes: a stalled
//! helper may install a temp long after the split completed (and the new
//! node possibly merged back). Recovery: any thread that finds a temp
//! whose left split revision is already finalized simply unlinks the temp
//! (`helpTempSplitNode`'s first check).

use std::sync::atomic::Ordering;

use crossbeam_epoch::{Guard, Owned, Shared};
use jiffy_clock::VersionClock;

use crate::inner::{JiffyInner, MapKey, MapValue};
use crate::node::{Node, NodeKey, NodeKind, Revision};

impl<K: MapKey, V: MapValue, C: VersionClock> JiffyInner<K, V, C> {
    /// Drive the structure part of a split to completion: after this
    /// returns, the new right node is published (or the whole split was
    /// already completed by others). Does *not* finalize the version —
    /// callers do that through the normal finalize path (for batches, the
    /// version belongs to the descriptor).
    ///
    /// `node_s` is the node whose head is (or was) `lsr_s`.
    pub(crate) fn help_split<'g>(
        &self,
        node_s: Shared<'g, Node<K, V>>,
        lsr_s: Shared<'g, Revision<K, V>>,
        guard: &'g Guard,
    ) {
        // SAFETY: non-null and reached under the enclosing pin guard;
        // EBR defers reclamation of epoch-reachable nodes until unpin.
        let node = unsafe { node_s.deref() };
        // SAFETY: non-null and reached under the enclosing pin guard;
        // EBR defers reclamation of epoch-reachable nodes until unpin.
        let lsr = unsafe { lsr_s.deref() };
        let info = lsr.as_split().expect("help_split takes a left split revision").clone();
        #[cfg(debug_assertions)]
        let mut spins = 0u64;
        loop {
            #[cfg(debug_assertions)]
            {
                spins += 1;
                if spins > 30_000_000 {
                    jiffy_obs::dump_on_failure("help_split livelock tripwire", 64);
                    panic!("help_split livelock: lsr_ver={}", lsr.version());
                }
            }
            if lsr.version() >= 0 {
                // Split already completed (possibly long ago). If a stale
                // temp of ours lingers, the next traversal removes it.
                self.remove_stale_temp(node_s, lsr_s, guard);
                return;
            }
            let next_s = node.next.load(Ordering::Acquire, guard);
            if next_s.is_null() {
                // k is the last node and the temp is not in yet.
                self.install_temp(node_s, lsr_s, next_s, &info.split_key, guard);
                continue;
            }
            // SAFETY: non-null and reached under the enclosing pin guard;
            // EBR defers reclamation of epoch-reachable nodes until unpin.
            let next = unsafe { next_s.deref() };
            if let NodeKind::TempSplit { lsr: tlsr, .. } = &next.kind {
                if tlsr.load(Ordering::Acquire, guard) == lsr_s {
                    // Our temp is in: replace it with the real node.
                    self.help_temp_split_node(node_s, next_s, guard);
                } else {
                    // A stale temp from an older split of this node.
                    self.help_temp_split_node(node_s, next_s, guard);
                }
                continue;
            }
            if next.is_terminated() {
                // A dead node (same-key twin or an earlier merged
                // neighbour) is in the way: unlink it before deciding.
                let succ = next.next.load(Ordering::Acquire, guard);
                let _ = node.next.compare_exchange(
                    next_s,
                    succ,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    guard,
                );
                continue;
            }
            if next.key == NodeKey::Key(info.split_key.clone()) {
                // The real node o is published: structure complete.
                return;
            }
            // No temp, no node o: install the temp split node.
            self.install_temp(node_s, lsr_s, next_s, &info.split_key, guard);
        }
    }

    /// Step 3: CAS a temp split node after `node_s` (expected successor
    /// `expected_next`).
    fn install_temp<'g>(
        &self,
        node_s: Shared<'g, Node<K, V>>,
        lsr_s: Shared<'g, Revision<K, V>>,
        expected_next: Shared<'g, Node<K, V>>,
        split_key: &K,
        guard: &'g Guard,
    ) {
        // SAFETY: non-null and reached under the enclosing pin guard;
        // EBR defers reclamation of epoch-reachable nodes until unpin.
        let node = unsafe { node_s.deref() };
        let temp = Owned::new(Node::<K, V>::new_temp_split(split_key.clone()));
        if let NodeKind::TempSplit { origin, lsr } = &temp.kind {
            origin.store(node_s, Ordering::Relaxed);
            lsr.store(lsr_s, Ordering::Relaxed);
        }
        // The temp's `next` is immutable after publication (see list.rs).
        temp.next.store(expected_next, Ordering::Relaxed);
        match node.next.compare_exchange(
            expected_next,
            temp,
            Ordering::AcqRel,
            Ordering::Acquire,
            guard,
        ) {
            Ok(temp_s) => {
                // SAFETY: non-null and reached under the enclosing pin guard.
                let lsr_v = unsafe { lsr_s.deref() }.version();
                jiffy_obs::trace_event!(
                    SplitTemp,
                    lsr_v.unsigned_abs(),
                    temp_s.as_raw() as usize,
                    node_s.as_raw() as usize
                );
                // Drive it straight to the real node.
                self.help_temp_split_node(node_s, temp_s, guard);
            }
            Err(e) => drop(e.new),
        }
    }

    /// Steps 4-5 of Figure 3 (`helpTempSplitNode`): replace a temp split
    /// node with the real right node — or, if the split behind it already
    /// finished (stale ABA temp), unlink the temp.
    ///
    /// `pred_s` is the node whose `next` currently references the temp
    /// (the origin for live temps; possibly another node for stale ones).
    pub(crate) fn help_temp_split_node<'g>(
        &self,
        pred_s: Shared<'g, Node<K, V>>,
        temp_s: Shared<'g, Node<K, V>>,
        guard: &'g Guard,
    ) {
        // SAFETY: non-null and reached under the enclosing pin guard;
        // EBR defers reclamation of epoch-reachable nodes until unpin.
        let temp = unsafe { temp_s.deref() };
        let NodeKind::TempSplit { origin, lsr } = &temp.kind else {
            return;
        };
        let lsr_s = lsr.load(Ordering::Acquire, guard);
        // SAFETY: non-null and reached under the enclosing pin guard;
        // EBR defers reclamation of epoch-reachable nodes until unpin.
        let lsr_r = unsafe { lsr_s.deref() };
        let temp_next = temp.next.load(Ordering::Acquire, guard);
        if lsr_r.version() >= 0 {
            // Stale temp: the split completed without it (ABA recovery).
            // SAFETY: non-null and reached under the enclosing pin guard;
            // EBR defers reclamation of epoch-reachable nodes until unpin.
            let pred = unsafe { pred_s.deref() };
            if pred.next.load(Ordering::Acquire, guard) == temp_s
                && pred
                    .next
                    .compare_exchange(temp_s, temp_next, Ordering::AcqRel, Ordering::Acquire, guard)
                    .is_ok()
            {
                // SAFETY: unlinked from the structure above, so no new reader
                // can reach it; already-pinned readers hold it until they unpin.
                unsafe { guard.defer_destroy(temp_s) };
            }
            return;
        }
        // Live temp: it hangs off its origin. Build the real node o.
        let origin_s = origin.load(Ordering::Acquire, guard);
        // SAFETY: non-null and reached under the enclosing pin guard;
        // EBR defers reclamation of epoch-reachable nodes until unpin.
        let origin_n = unsafe { origin_s.deref() };
        let info = lsr_r.as_split().expect("temp references a left split revision");
        let rsr_s = info.right.load(Ordering::Acquire, guard);
        let height = self.random_height();
        let o = Owned::new(Node::<K, V>::new_normal(NodeKey::Key(info.split_key.clone()), height));
        o.head.store(rsr_s, Ordering::Relaxed);
        o.next.store(temp_next, Ordering::Relaxed);
        match origin_n.next.compare_exchange(temp_s, o, Ordering::AcqRel, Ordering::Acquire, guard)
        {
            Ok(o_s) => {
                jiffy_obs::trace_event!(
                    SplitPublish,
                    lsr_r.version().unsigned_abs(),
                    o_s.as_raw() as usize,
                    temp_s.as_raw() as usize
                );
                // SAFETY: unlinked from the structure above, so no new reader
                // can reach it; already-pinned readers hold it until they unpin.
                unsafe { guard.defer_destroy(temp_s) };
                self.link_tower(o_s, guard);
            }
            Err(e) => drop(e.new), // someone else completed (or removed a stale temp)
        }
    }

    /// ABA cleanup path of `help_split`: if a stale temp for `lsr_s` still
    /// hangs off `node_s`, unlink it.
    fn remove_stale_temp<'g>(
        &self,
        node_s: Shared<'g, Node<K, V>>,
        lsr_s: Shared<'g, Revision<K, V>>,
        guard: &'g Guard,
    ) {
        // SAFETY: non-null and reached under the enclosing pin guard;
        // EBR defers reclamation of epoch-reachable nodes until unpin.
        let node = unsafe { node_s.deref() };
        let next_s = node.next.load(Ordering::Acquire, guard);
        if next_s.is_null() {
            return;
        }
        // SAFETY: non-null and reached under the enclosing pin guard;
        // EBR defers reclamation of epoch-reachable nodes until unpin.
        let next = unsafe { next_s.deref() };
        if let NodeKind::TempSplit { lsr, .. } = &next.kind {
            if lsr.load(Ordering::Acquire, guard) == lsr_s {
                self.help_temp_split_node(node_s, next_s, guard);
            }
        }
    }
}
