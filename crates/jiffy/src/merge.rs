//! The node merge protocol (paper §3.3.1, Figure 4).
//!
//! Merging node *o* into its predecessor (towards lower keys, rule §3.1):
//!
//! 1. CAS a *merge terminator* onto *o*'s revision list — from here no
//!    revision can ever be added to *o* (so no split of *o* either);
//! 2. find the live predecessor *k*, completing any pending operation
//!    there first (possibly a whole cascade of merges — cascades run
//!    towards lower keys and bottom out at the base node, which never
//!    merges, so they terminate);
//! 3. build a *merge revision* containing the union of *k*'s head and the
//!    terminator's successor (with the triggering remove / batch group
//!    applied) and CAS it in as *k*'s head. The merge revision joins the
//!    two revision lists: `next` continues *k*'s history, `right_next`
//!    continues *o*'s;
//! 4. CAS-adopt the installed merge revision into the terminator
//!    (`merge_rev`), making the merge idempotent for helpers;
//! 5. mark *o* terminated, unlink it from the tower and the level-0 list;
//! 6. finalize the version (plain remove) or advance the batch progress
//!    (batch group); the single winner of that step defers destruction of
//!    *o* and the terminator.

use std::sync::atomic::Ordering;

use crossbeam_epoch::{Guard, Owned, Shared};
use jiffy_clock::VersionClock;

use crate::inner::{JiffyInner, MapKey, MapValue};
use crate::node::{MergeInfo, Node, RevKind, RevStats, Revision, TermOp};
use crate::version::{finalize_cell, VersionRef};

impl<K: MapKey, V: MapValue, C: VersionClock> JiffyInner<K, V, C> {
    /// Drive the merge initiated by `mterm_s` (head of `o_s`) to
    /// completion. Returns the merge revision.
    pub(crate) fn help_merge_terminator<'g>(
        &self,
        o_s: Shared<'g, Node<K, V>>,
        mterm_s: Shared<'g, Revision<K, V>>,
        guard: &'g Guard,
    ) -> Shared<'g, Revision<K, V>> {
        // SAFETY: non-null and reached under the enclosing pin guard;
        // EBR defers reclamation of epoch-reachable nodes until unpin.
        let o = unsafe { o_s.deref() };
        // SAFETY: non-null and reached under the enclosing pin guard;
        // EBR defers reclamation of epoch-reachable nodes until unpin.
        let mterm = unsafe { mterm_s.deref() };
        let ti = mterm.as_terminator().expect("help_merge_terminator takes a terminator");

        // Phase 1: ensure a merge revision is installed and adopted.
        let mut mr_s = ti.merge_rev.load(Ordering::Acquire, guard);
        #[cfg(debug_assertions)]
        let mut spins = 0u64;
        while mr_s.is_null() {
            #[cfg(debug_assertions)]
            {
                spins += 1;
                if spins > 30_000_000 {
                    jiffy_obs::dump_on_failure("help_merge_terminator livelock tripwire", 64);
                    panic!("help_merge_terminator livelock: mterm_ver={}", mterm.version());
                }
            }
            let Some(pred_s) = self.find_pred(o_s, guard) else {
                // `o` unreachable pre-adoption can only mean another
                // helper raced ahead; re-read and retry.
                mr_s = ti.merge_rev.load(Ordering::Acquire, guard);
                continue;
            };
            // SAFETY: non-null and reached under the enclosing pin guard;
            // EBR defers reclamation of epoch-reachable nodes until unpin.
            let pred = unsafe { pred_s.deref() };
            if pred.is_terminated() {
                mr_s = ti.merge_rev.load(Ordering::Acquire, guard);
                continue;
            }
            // The historical phase-1 race window: a helper preempted
            // right here (pred chosen, head not yet read) while the real
            // merge completed underneath it reads a `phead` that already
            // contains `o`'s merged data — only the `merge_rev` re-check
            // below stops it from duplicating the range. Probe so the
            // replay test and the explorer can preempt at exactly this
            // point.
            #[cfg(feature = "audit-sched")]
            jiffy_audit::sched::probe("merge::adopt-recheck");
            let phead_s = pred.head.load(Ordering::Acquire, guard);
            // Revalidate adoption AFTER reading the predecessor's head.
            // A racing helper may have installed and adopted a merge
            // revision for this terminator, completed it (termination,
            // unlink, version finalization — all strictly after the
            // adoption CAS), and let a writer stack fresh revisions on
            // the now-finalized head: `phead` then already *contains*
            // `o`'s merged data. Building a second merge revision from
            // it would duplicate `o`'s range above the head — born
            // final (the shared cell is already finalized), carrying
            // `o`'s stale pre-merge history as live data and its right
            // branch twice. Because adoption happens-before any such
            // head growth, re-checking `merge_rev` here excludes it.
            if !ti.merge_rev.load(Ordering::Acquire, guard).is_null() {
                mr_s = ti.merge_rev.load(Ordering::Acquire, guard);
                continue;
            }
            // SAFETY: non-null and reached under the enclosing pin guard;
            // EBR defers reclamation of epoch-reachable nodes until unpin.
            let phead = unsafe { phead_s.deref() };
            if let Some(pmi) = phead.as_merge() {
                if pmi.mterm.load(Ordering::Acquire, guard) == mterm_s {
                    // `mterm` matching is NOT proof this revision is ours:
                    // the completed merge of a *previous* right neighbour
                    // can still be `phead`, its terminator freed by that
                    // merge's cleanup, and our terminator reallocated at
                    // the same address — an ABA that EBR cannot prevent
                    // (the dangling `pmi.mterm` was written in a previous
                    // pin-life; equality of a live pointer with it is
                    // coincidence). Adopting such a revision wedges the
                    // terminator permanently (`merge_rev` is write-once)
                    // and, pre-latch, sent helpers through its freed
                    // `right_node`. The latch disambiguates: a genuine
                    // stalled installer's revision cannot be `completed`
                    // (completion requires adoption, and `merge_rev` was
                    // re-read null above), while a stale one always is —
                    // its terminator is only freed *after* the completer's
                    // `completed` store (Release, and the free is ordered
                    // behind EBR's epoch advance), so by the time the
                    // allocator can hand us its address the store is
                    // visible.
                    if !pmi.completed.load(Ordering::Acquire) {
                        // Ours, installer stalled before adopting: adopt.
                        if ti
                            .merge_rev
                            .compare_exchange(
                                Shared::null(),
                                phead_s,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                                guard,
                            )
                            .is_ok()
                        {
                            jiffy_obs::trace_event!(
                                MergeAdopt,
                                mterm.version().unsigned_abs(),
                                phead_s.as_raw() as usize,
                                mterm_s.as_raw() as usize
                            );
                        }
                        mr_s = ti.merge_rev.load(Ordering::Acquire, guard);
                        continue;
                    }
                    // Completed + matching `mterm`: either our merge raced
                    // to full completion since the re-check above (then it
                    // was adopted first — re-read and exit the loop), or
                    // the address-reuse false match (merge_rev still null:
                    // fall through and treat `phead` as what it is, a
                    // legitimate finalized head to build a fresh merge
                    // revision from).
                    mr_s = ti.merge_rev.load(Ordering::Acquire, guard);
                    if !mr_s.is_null() {
                        continue;
                    }
                }
            }
            if phead.is_merge_terminator() {
                // The predecessor is itself being merged away: complete
                // that merge first (cascade towards lower keys).
                self.help_merge_terminator(pred_s, phead_s, guard);
                mr_s = ti.merge_rev.load(Ordering::Acquire, guard);
                continue;
            }
            if phead.is_pending() {
                self.help_pending_update(pred_s, phead_s, guard);
                mr_s = ti.merge_rev.load(Ordering::Acquire, guard);
                continue;
            }

            // Build the merge revision from the two finalized heads.
            let right_head_s = mterm.next.load(Ordering::Acquire, guard);
            // SAFETY: non-null and reached under the enclosing pin guard;
            // EBR defers reclamation of epoch-reachable nodes until unpin.
            let right_head = unsafe { right_head_s.deref() };
            let with_index = !self.config.disable_hash_index;
            let right_key =
                o.key.as_key().expect("the base node never carries a merge terminator").clone();

            let (data, vref, coverage_end, span) = match &ti.op {
                TermOp::Remove { key } => {
                    let combined = phead
                        .data
                        .concat(&right_head.data.with_remove(key, with_index), with_index);
                    let cell = match &mterm.vref {
                        VersionRef::Shared(c) => c.clone(),
                        _ => unreachable!("remove terminators use a shared cell"),
                    };
                    (combined, VersionRef::Shared(cell), 0, (0, 0))
                }
                TermOp::Batch { group_start, .. } => {
                    let desc = mterm
                        .batch_descriptor()
                        .expect("batch terminators carry the descriptor")
                        .clone();
                    // The merge folds in the predecessor's key group too
                    // (§3.3.3: merges proceed towards lower keys, so the
                    // combined revision absorbs everything down to the
                    // predecessor's node key).
                    let end = desc.group_end(*group_start, &pred.key);
                    let deltas = desc.group_deltas(*group_start, end);
                    let combined = phead
                        .data
                        .concat(&right_head.data, with_index)
                        .apply_deltas(&deltas, with_index);
                    (combined, VersionRef::Batch(desc), end, (*group_start, end))
                }
            };

            let now = self.now_secs();
            let (pl, pu) =
                crate::autoscale::fold_update(phead.stats.load(), phead.stats.update_gap(now));
            let mr = Owned::new(Revision {
                vref,
                data,
                next: crossbeam_epoch::Atomic::null(),
                kind: RevKind::Merge(MergeInfo {
                    right_key,
                    right_node: crossbeam_epoch::Atomic::null(),
                    right_next: crossbeam_epoch::Atomic::null(),
                    mterm: crossbeam_epoch::Atomic::null(),
                    completed: std::sync::atomic::AtomicBool::new(false),
                    coverage_end,
                }),
                stats: RevStats::new(pl, pu, now),
                batch_span: span,
            });
            mr.next.store(phead_s, Ordering::Relaxed);
            if let RevKind::Merge(mi) = &mr.kind {
                mi.right_node.store(o_s, Ordering::Relaxed);
                mi.right_next.store(right_head_s, Ordering::Relaxed);
                mi.mterm.store(mterm_s, Ordering::Relaxed);
            }
            match pred.head.compare_exchange(
                phead_s,
                mr,
                Ordering::AcqRel,
                Ordering::Acquire,
                guard,
            ) {
                Ok(published) => {
                    jiffy_obs::trace_event!(
                        MergeBuild,
                        mterm.version().unsigned_abs(),
                        published.as_raw() as usize,
                        mterm_s.as_raw() as usize
                    );
                    if ti
                        .merge_rev
                        .compare_exchange(
                            Shared::null(),
                            published,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                            guard,
                        )
                        .is_ok()
                    {
                        jiffy_obs::trace_event!(
                            MergeAdopt,
                            mterm.version().unsigned_abs(),
                            published.as_raw() as usize,
                            mterm_s.as_raw() as usize
                        );
                    }
                    // Entry accounting: union minus both sources.
                    // SAFETY: non-null and reached under the enclosing pin guard;
                    // EBR defers reclamation of epoch-reachable nodes until unpin.
                    let delta = unsafe { published.deref() }.data.len() as isize
                        - (phead.data.len() + right_head.data.len()) as isize;
                    self.add_len(delta);
                }
                Err(e) => drop(e.new),
            }
            mr_s = ti.merge_rev.load(Ordering::Acquire, guard);
        }

        // Phase 2.
        self.complete_merge(mr_s, guard);
        mr_s
    }

    /// Phases 4-6 for an already-installed merge revision: adopt,
    /// terminate, unlink, finalize/advance. Idempotent; safe to call from
    /// any helper that encounters a pending merge revision.
    pub(crate) fn complete_merge<'g>(&self, mr_s: Shared<'g, Revision<K, V>>, guard: &'g Guard) {
        // SAFETY: non-null and reached under the enclosing pin guard;
        // EBR defers reclamation of epoch-reachable nodes until unpin.
        let mr = unsafe { mr_s.deref() };
        let mi = mr.as_merge().expect("complete_merge takes a merge revision");
        // Re-entry gate. A *batch* merge revision stays `is_pending()`
        // until its whole descriptor finalizes — long after a first
        // completer has unlinked the right node and deferred destruction
        // of it and the terminator — so helpers keep arriving here from
        // `help_pending_update` in later epochs, and the `mterm` /
        // `right_node` derefs below would then read freed memory (the
        // seed-34 mkbench-reshard crash: a reclaimed node shell re-read
        // with a zeroed key). Reading `false` proves this thread's pin
        // predates the winner's program-order-later `defer_destroy`, so
        // EBR keeps both pointees alive for the rest of this call;
        // reading `true` means phases 4-6 (including the group advance)
        // already happened and there is nothing left to help.
        if mi.completed.load(Ordering::Acquire) {
            return;
        }
        let mterm_s = mi.mterm.load(Ordering::Acquire, guard);
        // SAFETY: non-null and reached under the enclosing pin guard;
        // EBR defers reclamation of epoch-reachable nodes until unpin.
        let mterm = unsafe { mterm_s.deref() };
        let ti = mterm.as_terminator().expect("merge revision references its terminator");
        // Adopt (no-op if already adopted; a different adopted revision is
        // impossible because installation is serialized on pred.head).
        if ti
            .merge_rev
            .compare_exchange(Shared::null(), mr_s, Ordering::AcqRel, Ordering::Acquire, guard)
            .is_ok()
        {
            jiffy_obs::trace_event!(
                MergeAdopt,
                mterm.version().unsigned_abs(),
                mr_s.as_raw() as usize,
                mterm_s.as_raw() as usize
            );
        }
        debug_assert_eq!(ti.merge_rev.load(Ordering::Acquire, guard), mr_s);

        let o_s = mi.right_node.load(Ordering::Acquire, guard);
        // SAFETY: non-null and reached under the enclosing pin guard;
        // EBR defers reclamation of epoch-reachable nodes until unpin.
        let o = unsafe { o_s.deref() };
        o.terminated.store(true, Ordering::SeqCst);
        self.unlink_tower(o_s, guard);
        // Unlink from level 0: find_pred unlinks terminated targets as it
        // walks; loop until `o` is unreachable.
        #[cfg(debug_assertions)]
        let mut spins = 0u64;
        while self.find_pred(o_s, guard).is_some() {
            #[cfg(debug_assertions)]
            {
                spins += 1;
                if spins > 30_000_000 {
                    jiffy_obs::dump_on_failure("complete_merge unlink livelock tripwire", 64);
                    panic!("complete_merge unlink livelock");
                }
            }
            std::hint::spin_loop();
        }

        // Final step: make the merge visible — publish the final version
        // (plain remove) or hand the baton back to the batch executor by
        // advancing the descriptor's progress past this group.
        match &mr.vref {
            VersionRef::Batch(desc) => {
                let _ = desc.advance(mr.batch_span.0, mi.coverage_end);
            }
            _ => {
                finalize_cell(&self.clock, mr.vref.cell());
            }
        }
        // Latch completion before anyone is allowed to defer destruction:
        // every path to the defer below has this store sequenced before
        // it, which is what makes the re-entry gate's `false` → "my pin
        // predates the defer" argument sound (Release pairs with the
        // gate's Acquire so a `true` reader also sees the unlink done).
        mi.completed.store(true, Ordering::Release);
        jiffy_obs::trace_event!(
            MergeComplete,
            mr.version().unsigned_abs(),
            mr_s.as_raw() as usize,
            o_s.as_raw() as usize
        );
        if self.claim_merge_cleanup(ti) {
            jiffy_obs::trace_event!(
                MergeCleanup,
                mr.version().unsigned_abs(),
                o_s.as_raw() as usize,
                mterm_s.as_raw() as usize
            );
            // SAFETY: one-shot cleanup — exactly one helper wins the
            // claim CAS, and each has itself verified the node is fully
            // unlinked, so no new reader can reach the shell or the
            // terminator; pinned readers are protected until they unpin.
            unsafe {
                guard.defer_destroy(o_s);
                guard.defer_destroy(mterm_s);
            }
        }
    }

    /// Claim the one-shot cleanup of a (non-batch) merge: the terminator's
    /// `cleanup_claimed` flag is CAS-won by exactly one helper.
    fn claim_merge_cleanup(&self, ti: &crate::node::TermInfo<K, V>) -> bool {
        ti.cleanup_claimed
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}
