//! Version numbers (paper §3.2).
//!
//! Every update operation — and every revision it creates — carries two
//! version numbers over its lifetime:
//!
//! * an *optimistic* version `v = -(t + 1)` where `t` is a clock read taken
//!   when the update starts. It is negative, which tells concurrent threads
//!   the update is still pending, and its magnitude is a lower bound on the
//!   final version;
//! * a *final* version `v' = max(clock.now(), |v|)`, assigned exactly once
//!   with a CAS. Assigning it is the linearization point of the update.
//!
//! The invariant `v' >= |v|` lets snapshot readers skip any revision whose
//! version magnitude exceeds the snapshot version without helping it
//! (§3.2). Before publishing `v'` the writer spins until the clock has
//! advanced past it (`wait_until`, Algorithm 1 line 66; with a TSC-grade
//! clock the loop body never executes in practice).
//!
//! Revisions created by a *batch update* do not own a version cell: they
//! all read the version through the shared [`BatchDescriptor`]
//! (§3.3.3 item 1), so the whole batch becomes visible atomically. The two
//! halves of a *split* likewise share one cell, as do a merge terminator
//! and its merge revision.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use jiffy_clock::VersionClock;

use crate::batch::BatchDescriptor;

/// Version of the pre-populated initial revision of the base node. Zero is
/// "finalized" (non-negative) and is `<=` every snapshot version, so an
/// empty map is visible at any snapshot.
pub(crate) const INITIAL_VERSION: i64 = 0;

/// A single CAS-able version slot shared between the parts of one logical
/// update (a split pair, or a merge terminator + merge revision).
#[derive(Debug)]
pub(crate) struct VersionCell {
    v: AtomicI64,
}

impl VersionCell {
    pub(crate) fn new_optimistic<C: VersionClock>(clock: &C) -> Self {
        VersionCell { v: AtomicI64::new(optimistic_version(clock)) }
    }

    pub(crate) fn with_value(v: i64) -> Self {
        VersionCell { v: AtomicI64::new(v) }
    }

    #[inline]
    pub(crate) fn load(&self) -> i64 {
        self.v.load(Ordering::Acquire)
    }

    /// Set the final version if not already set; returns the version that
    /// ended up in the cell (ours or the winner's). Mirrors the paper's
    /// `trySetVersion` (Algorithm 1 lines 59-65).
    pub(crate) fn try_finalize(&self, fin: i64) -> i64 {
        debug_assert!(fin > 0);
        let cur = self.v.load(Ordering::Acquire);
        if cur >= 0 {
            return cur;
        }
        match self.v.compare_exchange(cur, fin, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => fin,
            Err(actual) => {
                debug_assert!(actual >= 0, "version can only change pending -> final");
                actual
            }
        }
    }
}

/// Compute the optimistic (pending) version for a new update: `-(t + 1)`.
#[inline]
pub(crate) fn optimistic_version<C: VersionClock>(clock: &C) -> i64 {
    let t = clock.now() as i64;
    -(t + 1)
}

/// Busy-wait until the clock reaches `version` (Algorithm 1, `waitUntil`).
/// With TSC/monotonic clocks `fin = max(now, |opt|)` already satisfies
/// this, so the loop body essentially never runs; it exists to uphold the
/// snapshot invariant even on coarse clocks.
#[inline]
pub(crate) fn wait_until<C: VersionClock>(clock: &C, version: i64) {
    while (clock.now() as i64) < version {
        std::hint::spin_loop();
    }
}

/// Compute + publish the final version for `cell`: `max(now, |opt|)`,
/// wait for the clock, CAS. Returns the final version now in the cell.
pub(crate) fn finalize_cell<C: VersionClock>(clock: &C, cell: &VersionCell) -> i64 {
    let cur = cell.load();
    if cur >= 0 {
        return cur;
    }
    let fin = (clock.now() as i64).max(-cur);
    wait_until(clock, fin);
    cell.try_finalize(fin)
}

/// Where a revision's version number lives (§3.3.3 item 1: batch revisions
/// read it "indirectly through the batch descriptor").
pub(crate) enum VersionRef<K, V> {
    /// The revision owns its version (regular put/remove revisions).
    Inline(VersionCell),
    /// Shared with the other half of a split, or between a merge
    /// terminator and its merge revision.
    Shared(Arc<VersionCell>),
    /// Shared by every revision of one batch update.
    Batch(Arc<BatchDescriptor<K, V>>),
}

impl<K, V> VersionRef<K, V> {
    #[inline]
    pub(crate) fn load(&self) -> i64 {
        self.cell().load()
    }

    #[inline]
    pub(crate) fn cell(&self) -> &VersionCell {
        match self {
            VersionRef::Inline(c) => c,
            VersionRef::Shared(c) => c,
            VersionRef::Batch(d) => d.version_cell(),
        }
    }

    /// The batch descriptor, if this revision belongs to a batch update.
    pub(crate) fn batch(&self) -> Option<&Arc<BatchDescriptor<K, V>>> {
        match self {
            VersionRef::Batch(d) => Some(d),
            _ => None,
        }
    }
}

impl<K, V> std::fmt::Debug for VersionRef<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VersionRef::Inline(c) => write!(f, "Inline({})", c.load()),
            VersionRef::Shared(c) => write!(f, "Shared({})", c.load()),
            VersionRef::Batch(d) => write!(f, "Batch({})", d.version_cell().load()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jiffy_clock::{AtomicClock, MonotonicClock};

    #[test]
    fn optimistic_is_negative() {
        let c = MonotonicClock::new();
        for _ in 0..100 {
            assert!(optimistic_version(&c) < 0);
        }
    }

    #[test]
    fn finalize_respects_invariant() {
        let c = AtomicClock::new();
        let cell = VersionCell::new_optimistic(&c);
        let opt = cell.load();
        assert!(opt < 0);
        let fin = finalize_cell(&c, &cell);
        assert!(fin >= -opt, "final {fin} must be >= |optimistic| {}", -opt);
        assert_eq!(cell.load(), fin);
    }

    #[test]
    fn finalize_is_idempotent() {
        let c = AtomicClock::new();
        let cell = VersionCell::new_optimistic(&c);
        let fin1 = finalize_cell(&c, &cell);
        let fin2 = finalize_cell(&c, &cell);
        assert_eq!(fin1, fin2);
    }

    #[test]
    fn try_finalize_first_writer_wins() {
        let cell = VersionCell::with_value(-100);
        assert_eq!(cell.try_finalize(150), 150);
        assert_eq!(cell.try_finalize(999), 150);
        assert_eq!(cell.load(), 150);
    }

    #[test]
    fn concurrent_finalize_single_winner() {
        use std::sync::Arc;
        let clock = Arc::new(AtomicClock::new());
        for _ in 0..50 {
            let cell = Arc::new(VersionCell::new_optimistic(&*clock));
            let mut handles = vec![];
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                let clock = Arc::clone(&clock);
                handles.push(std::thread::spawn(move || finalize_cell(&*clock, &cell)));
            }
            let results: Vec<i64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            // All helpers must agree on the final version.
            assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
            assert_eq!(cell.load(), results[0]);
        }
    }

    #[test]
    fn wait_until_terminates() {
        let c = AtomicClock::new();
        let target = c.now() as i64 + 50;
        wait_until(&c, target); // AtomicClock advances on every read
        assert!(c.now() as i64 >= target);
    }
}
