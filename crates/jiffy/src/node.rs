//! Skip-list nodes and the revision-list object model (paper §3.1, §3.3.1).
//!
//! A node of the lowest-level list owns a *revision list*: newest revision
//! first, each revision immutable once published. Revision lists are not
//! plain linked lists — node splits and merges make them branch and join:
//!
//! * a **left/right split revision** pair carries the two halves of a
//!   split node's entries; both halves share one version cell and both
//!   point at the pre-split revision (only the left edge owns it);
//! * a **merge revision** joins two lists: its `next` continues the
//!   surviving (left) node's history, `right_next` continues the merged
//!   (right) node's history;
//! * a **merge terminator** caps the merged node's list so nothing can be
//!   added to it, and records the operation that triggered the merge.
//!
//! Memory ownership for reclamation: every revision is destroyed
//! *shallowly*; chain reclamation walks explicit edges, and only edges
//! marked *owning* are followed ([`Revision::owns_next`]). The right split
//! revision and the merge terminator hold non-owning duplicates of edges
//! owned elsewhere — that is what makes the branching lists reclaimable
//! without reference counting.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

use crossbeam_epoch::Atomic;

use crate::batch::BatchDescriptor;
use crate::revision::RevData;
use crate::version::{VersionCell, VersionRef, INITIAL_VERSION};

/// Maximum skip-list height (level 0 is the authoritative list; levels
/// `1..MAX_HEIGHT` are probabilistic shortcuts).
pub(crate) const MAX_HEIGHT: usize = 20;

/// Key of a node: the inclusive lower end of the key range it manages.
/// The base node's key is `⊥` (negative infinity); it manages
/// `(-inf, first-split-key)` and is never merged or removed (§3.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum NodeKey<K> {
    NegInf,
    Key(K),
}

impl<K: Ord> NodeKey<K> {
    /// `self <= key`, i.e. `key` could live in a node with this node key.
    #[inline]
    pub(crate) fn le(&self, key: &K) -> bool {
        match self {
            NodeKey::NegInf => true,
            NodeKey::Key(k) => k <= key,
        }
    }

    /// Strictly greater than `key` (node lies past the key).
    #[inline]
    #[allow(dead_code)]
    pub(crate) fn gt(&self, key: &K) -> bool {
        !self.le(key)
    }

    pub(crate) fn as_key(&self) -> Option<&K> {
        match self {
            NodeKey::NegInf => None,
            NodeKey::Key(k) => Some(k),
        }
    }
}

/// Exponential moving averages driving the autoscaling policy (§3.3.6).
/// Updated racily by design ("a race condition, which is harmless, as we
/// are just gathering some statistics").
///
/// Weights are derived from per-node operation gaps: a fold after a long
/// quiet period carries more weight than one in a hot streak, so the
/// EMAs track the *time share* of reads vs updates at the node (the
/// paper's stated quantity) and converge within seconds regardless of
/// how many nodes each thread's attention is spread over.
pub(crate) struct RevStats {
    /// f32 bit patterns; `p_reads`/`p_updates` estimate the share of time
    /// threads recently spent reading/updating this node.
    p_reads: AtomicU32,
    p_updates: AtomicU32,
    /// Process-relative seconds when this revision was created.
    created_at: f32,
    /// Process-relative seconds of the last read-side fold (f32 bits).
    last_read_fold: AtomicU32,
}

impl RevStats {
    pub(crate) fn new(p_reads: f32, p_updates: f32, now: f32) -> Self {
        RevStats {
            p_reads: AtomicU32::new(p_reads.to_bits()),
            p_updates: AtomicU32::new(p_updates.to_bits()),
            created_at: now,
            last_read_fold: AtomicU32::new(now.to_bits()),
        }
    }

    #[inline]
    pub(crate) fn load(&self) -> (f32, f32) {
        (
            f32::from_bits(self.p_reads.load(Ordering::Relaxed)),
            f32::from_bits(self.p_updates.load(Ordering::Relaxed)),
        )
    }

    #[inline]
    pub(crate) fn store(&self, p_reads: f32, p_updates: f32) {
        self.p_reads.store(p_reads.to_bits(), Ordering::Relaxed);
        self.p_updates.store(p_updates.to_bits(), Ordering::Relaxed);
    }

    /// Seconds since this revision was created (update-side weight).
    #[inline]
    pub(crate) fn update_gap(&self, now: f32) -> f32 {
        now - self.created_at
    }

    /// Seconds since the last read fold (read-side weight); also bumps
    /// the marker.
    #[inline]
    pub(crate) fn read_gap(&self, now: f32) -> f32 {
        let last = f32::from_bits(self.last_read_fold.load(Ordering::Relaxed));
        self.last_read_fold.store(now.to_bits(), Ordering::Relaxed);
        now - last.max(self.created_at)
    }
}

/// Metadata shared by the two halves of one node split.
pub(crate) struct SplitInfo<K, V> {
    /// Key of the new (right) node — the median of the split entries.
    pub(crate) split_key: K,
    /// The right split revision (set at construction, read by helpers
    /// building the new node).
    pub(crate) right: Atomic<Revision<K, V>>,
}

/// The operation a merge terminator is carrying into the merge revision.
pub(crate) enum TermOp<K, V> {
    /// A single `remove(key)` (Algorithm 1 lines 47-52).
    Remove { key: K },
    /// A batch-update group: ops `[group_start ..)` of the descriptor that
    /// fall into the merged range (resolved against the predecessor found
    /// at merge time).
    Batch { group_start: usize, _marker: std::marker::PhantomData<(K, V)> },
}

/// State of a merge terminator (Fig. 4b).
pub(crate) struct TermInfo<K, V> {
    pub(crate) op: TermOp<K, V>,
    /// CAS-set once a merge revision for this terminator has been
    /// *installed* at the predecessor; later helpers adopt it instead of
    /// building another one (merge idempotency).
    pub(crate) merge_rev: Atomic<Revision<K, V>>,
    /// Claimed (CAS false -> true) by the single helper that performs the
    /// one-shot cleanup: deferring destruction of the merged node shell
    /// and this terminator.
    pub(crate) cleanup_claimed: AtomicBool,
}

/// State of a merge revision (Fig. 4c): the join point of two lists.
pub(crate) struct MergeInfo<K, V> {
    /// Key of the node that was merged away (`rightKey` in Algorithm 2):
    /// snapshot reads for keys `>= right_key` descend into `right_next`.
    pub(crate) right_key: K,
    /// The merged node (needed by helpers to unlink it). Non-owning; the
    /// merge completer defers its destruction exactly once.
    pub(crate) right_node: Atomic<Node<K, V>>,
    /// The merged node's revision history (the terminator's successor).
    /// This is the *owning* reference to that chain.
    pub(crate) right_next: Atomic<Revision<K, V>>,
    /// The terminator this merge revision resolves (for adoption).
    /// Non-owning: destroyed together with `right_node`.
    pub(crate) mterm: Atomic<Revision<K, V>>,
    /// Set once phases 4-6 are done, *before* the cleanup winner defers
    /// destruction of `right_node` and `mterm`. A batch merge revision
    /// stays `is_pending()` until its whole descriptor finalizes — long
    /// after those two pointers dangle — so `complete_merge` re-entry
    /// must gate on this latch, not on the version (see the ordering
    /// argument at its load site).
    pub(crate) completed: AtomicBool,
    /// For batch-triggered merges: descriptor ops `[.., coverage_end)` are
    /// folded into this revision (the group of the merged node *and* the
    /// group of the surviving predecessor, §3.3.3 item 4 ordering).
    pub(crate) coverage_end: usize,
}

/// Role of a revision within the branching revision lists.
pub(crate) enum RevKind<K, V> {
    Regular,
    LeftSplit(Arc<SplitInfo<K, V>>),
    RightSplit(Arc<SplitInfo<K, V>>),
    Merge(MergeInfo<K, V>),
    MergeTerminator(TermInfo<K, V>),
}

/// A revision: an immutable bundle of entries tagged with a version
/// (possibly still pending), linked into its node's revision list.
///
/// # Layout (cache-conscious, audited)
///
/// `repr(C)` pins the declaration order so the point-read hot set —
/// version (`vref`), chain edge (`next`), kind discriminant, and the
/// entry-array pointers (`data`) — packs into the first two cache
/// lines, one adjacent-prefetch pair on x86_64. The fields only the
/// helping and autoscaling paths touch (`batch_span`, and the
/// GC/§3.3.6-only `stats`) sit behind them, so a lookup never pulls
/// their lines in. Do not reorder without re-checking
/// `revision_layout_keeps_hot_fields_front` below.
#[repr(C)]
pub(crate) struct Revision<K, V> {
    pub(crate) vref: VersionRef<K, V>,
    /// Older neighbour in this node's list (for a merge revision: the left
    /// branch). Mutated only by GC truncation (CAS to null).
    pub(crate) next: Atomic<Revision<K, V>>,
    pub(crate) kind: RevKind<K, V>,
    pub(crate) data: RevData<K, V>,
    /// For batch revisions: descriptor ops `[batch_start, batch_end)` are
    /// reflected in this revision (used to advance `progress`).
    pub(crate) batch_span: (usize, usize),
    /// Cold: read by the autoscaler's occasional folds and by GC, never
    /// on the per-op hot path.
    pub(crate) stats: RevStats,
}

impl<K, V> Revision<K, V> {
    pub(crate) fn new_regular(data: RevData<K, V>, version: i64, stats: RevStats) -> Self {
        Revision {
            vref: VersionRef::Inline(VersionCell::with_value(version)),
            data,
            next: Atomic::null(),
            kind: RevKind::Regular,
            stats,
            batch_span: (0, 0),
        }
    }

    /// The initial (empty, already-final) revision of a fresh map's base
    /// node.
    pub(crate) fn initial() -> Self
    where
        K: Ord + Clone + std::hash::Hash,
        V: Clone,
    {
        Self::new_regular(RevData::empty(), INITIAL_VERSION, RevStats::new(0.0, 0.0, 0.0))
    }

    #[inline]
    pub(crate) fn version(&self) -> i64 {
        self.vref.load()
    }

    /// Pending = the update that created this revision has not reached its
    /// linearization point yet.
    #[inline]
    pub(crate) fn is_pending(&self) -> bool {
        self.version() < 0
    }

    #[inline]
    pub(crate) fn batch_descriptor(&self) -> Option<&Arc<BatchDescriptor<K, V>>> {
        self.vref.batch()
    }

    /// Whether the `next` edge is the owning reference to the chain behind
    /// it (see module docs; right split revisions and merge terminators
    /// duplicate an edge owned elsewhere).
    #[inline]
    pub(crate) fn owns_next(&self) -> bool {
        !matches!(self.kind, RevKind::RightSplit(_) | RevKind::MergeTerminator(_))
    }

    #[inline]
    pub(crate) fn is_merge_terminator(&self) -> bool {
        matches!(self.kind, RevKind::MergeTerminator(_))
    }

    pub(crate) fn as_merge(&self) -> Option<&MergeInfo<K, V>> {
        match &self.kind {
            RevKind::Merge(m) => Some(m),
            _ => None,
        }
    }

    pub(crate) fn as_terminator(&self) -> Option<&TermInfo<K, V>> {
        match &self.kind {
            RevKind::MergeTerminator(t) => Some(t),
            _ => None,
        }
    }

    pub(crate) fn as_split(&self) -> Option<&Arc<SplitInfo<K, V>>> {
        match &self.kind {
            RevKind::LeftSplit(s) | RevKind::RightSplit(s) => Some(s),
            _ => None,
        }
    }

    #[inline]
    #[allow(dead_code)]
    pub(crate) fn is_left_split(&self) -> bool {
        matches!(self.kind, RevKind::LeftSplit(_))
    }
}

/// Discriminates real nodes from the transient placeholder used mid-split
/// (Fig. 3c-d).
pub(crate) enum NodeKind<K, V> {
    Normal,
    /// A temporary split node: occupies the new node's position in the
    /// level-0 list so concurrent operations can find the pending split
    /// and help. `origin` is the node being split; `lsr` its left split
    /// revision.
    TempSplit {
        origin: Atomic<Node<K, V>>,
        lsr: Atomic<Revision<K, V>>,
    },
}

/// A node of the skip list's lowest-level list, managing the key range
/// `[key, successor.key)`.
///
/// # Layout (cache-conscious, audited)
///
/// `repr(C)` pins the declaration order: everything the level-0 walk
/// and the point-get fast path touch — `key` (comparison), `head`
/// (revision list), `next` (the hop), `terminated`, and the `kind`
/// discriminant — is packed at the front (one cache line for
/// fixed-size keys). The tower array is boxed out of line and its
/// (fat) pointer sits last: only index-level descent reads it, with
/// its own prefetch. Do not reorder without re-checking
/// `node_layout_keeps_hot_fields_front` below.
#[repr(C)]
pub(crate) struct Node<K, V> {
    pub(crate) key: NodeKey<K>,
    /// Head of the revision list (the newest revision).
    pub(crate) head: Atomic<Revision<K, V>>,
    /// Level-0 successor.
    pub(crate) next: Atomic<Node<K, V>>,
    /// Set when the node's merge has been installed; traversals unlink
    /// terminated nodes (§3.3.2, `findNodeForKey`).
    pub(crate) terminated: AtomicBool,
    pub(crate) kind: NodeKind<K, V>,
    /// Shortcut pointers for levels `1..=height`. `tower[i]` is the
    /// successor at level `i + 1`. Empty for temp split nodes.
    pub(crate) tower: Box<[Atomic<Node<K, V>>]>,
}

impl<K, V> Node<K, V> {
    pub(crate) fn new_normal(key: NodeKey<K>, height: usize) -> Self {
        let tower = (0..height.saturating_sub(1)).map(|_| Atomic::null()).collect();
        Node {
            key,
            head: Atomic::null(),
            next: Atomic::null(),
            terminated: AtomicBool::new(false),
            kind: NodeKind::Normal,
            tower,
        }
    }

    pub(crate) fn new_temp_split(key: K) -> Self {
        Node {
            key: NodeKey::Key(key),
            head: Atomic::null(),
            next: Atomic::null(),
            terminated: AtomicBool::new(false),
            kind: NodeKind::TempSplit { origin: Atomic::null(), lsr: Atomic::null() },
            tower: Box::new([]),
        }
    }

    #[inline]
    pub(crate) fn is_temp_split(&self) -> bool {
        matches!(self.kind, NodeKind::TempSplit { .. })
    }

    #[inline]
    pub(crate) fn is_terminated(&self) -> bool {
        self.terminated.load(Ordering::Acquire)
    }

    /// Number of levels above level 0 this node participates in.
    #[inline]
    pub(crate) fn tower_height(&self) -> usize {
        self.tower.len()
    }
}

/// Random tower height: geometric with p = 1/2, capped at
/// [`MAX_HEIGHT`] (the probability of reaching level `h` is `2^-h`, as in
/// `ConcurrentSkipListMap`, which the paper adopts for index levels).
pub(crate) fn random_height(rng_state: &mut u64) -> usize {
    // xorshift64*
    let mut x = *rng_state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *rng_state = x;
    let bits = x.wrapping_mul(0x2545F4914F6CDD1D);
    (bits.trailing_ones() as usize + 1).min(MAX_HEIGHT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_key_ordering() {
        let neg: NodeKey<u64> = NodeKey::NegInf;
        assert!(neg.le(&0));
        assert!(neg.le(&u64::MAX));
        assert!(!neg.gt(&0));
        let five = NodeKey::Key(5u64);
        assert!(five.le(&5));
        assert!(five.le(&9));
        assert!(five.gt(&4));
        assert_eq!(five.as_key(), Some(&5));
        assert_eq!(neg.as_key(), None);
    }

    #[test]
    fn rev_stats_roundtrip() {
        let s = RevStats::new(0.25, 0.75, 1.0);
        assert_eq!(s.load(), (0.25, 0.75));
        s.store(0.5, 0.125);
        assert_eq!(s.load(), (0.5, 0.125));
    }

    #[test]
    fn rev_stats_gaps() {
        let s = RevStats::new(0.0, 0.0, 10.0);
        assert_eq!(s.update_gap(12.5), 2.5);
        // First read gap measured from creation; second from last fold.
        assert_eq!(s.read_gap(11.0), 1.0);
        assert_eq!(s.read_gap(11.5), 0.5);
    }

    #[test]
    fn initial_revision_is_final_and_empty() {
        let r: Revision<u64, u64> = Revision::initial();
        assert!(!r.is_pending());
        assert_eq!(r.version(), 0);
        assert!(r.data.is_empty());
        assert!(r.owns_next());
        assert!(r.as_merge().is_none());
        assert!(r.as_terminator().is_none());
        assert!(r.as_split().is_none());
    }

    #[test]
    fn node_construction() {
        let n: Node<u64, u64> = Node::new_normal(NodeKey::NegInf, 4);
        assert_eq!(n.tower_height(), 3);
        assert!(!n.is_temp_split());
        assert!(!n.is_terminated());

        let t: Node<u64, u64> = Node::new_temp_split(10);
        assert!(t.is_temp_split());
        assert_eq!(t.tower_height(), 0);
        assert_eq!(t.key, NodeKey::Key(10));
    }

    #[test]
    fn revision_layout_keeps_hot_fields_front() {
        use std::mem::offset_of;
        type R = Revision<u64, u64>;
        // The point-read hot set (version, chain edge, discriminant)
        // lives in the first cache line; the entry-array pointers start
        // within the first adjacent-prefetch pair (128 bytes).
        assert!(offset_of!(R, vref) < 64);
        assert!(offset_of!(R, next) < 64);
        assert!(offset_of!(R, kind) < 64);
        assert!(offset_of!(R, data) < 128);
        // Cold / helping-only fields are padded out behind the hot set.
        assert!(offset_of!(R, batch_span) > offset_of!(R, data));
        assert!(offset_of!(R, stats) > offset_of!(R, batch_span));
    }

    #[test]
    fn node_layout_keeps_hot_fields_front() {
        use std::mem::offset_of;
        type N = Node<u64, u64>;
        // Everything the level-0 walk touches fits one cache line for
        // fixed-size keys; the tower's fat pointer comes last.
        assert!(offset_of!(N, key) < 64);
        assert!(offset_of!(N, head) < 64);
        assert!(offset_of!(N, next) < 64);
        assert!(offset_of!(N, terminated) < 64);
        assert!(offset_of!(N, kind) < 64);
        assert!(offset_of!(N, tower) > offset_of!(N, kind));
    }

    #[test]
    fn random_height_distribution() {
        let mut state = 0x12345678_9abcdef0u64;
        let mut counts = [0usize; MAX_HEIGHT + 1];
        let n = 100_000;
        for _ in 0..n {
            let h = random_height(&mut state);
            assert!((1..=MAX_HEIGHT).contains(&h));
            counts[h] += 1;
        }
        // Roughly half the nodes are height 1, a quarter height 2, ...
        assert!((counts[1] as f64) > 0.4 * n as f64);
        assert!((counts[1] as f64) < 0.6 * n as f64);
        assert!((counts[2] as f64) > 0.15 * n as f64);
        assert!((counts[2] as f64) < 0.35 * n as f64);
    }

    #[test]
    fn random_height_varies_with_state() {
        let mut a = 1u64;
        let mut b = 999u64;
        let ha: Vec<usize> = (0..64).map(|_| random_height(&mut a)).collect();
        let hb: Vec<usize> = (0..64).map(|_| random_height(&mut b)).collect();
        assert_ne!(ha, hb);
    }
}
