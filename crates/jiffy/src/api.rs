//! [`OrderedIndex`] / [`SnapshotIndex`] implementations so Jiffy plugs
//! into the shared benchmark harness, the conformance tests, and the
//! sharded coordinator.

use index_api::{Batch, BatchOp, BulkLoad, OrderedIndex, ReadView, SnapshotIndex};
use jiffy_clock::VersionClock;

use crate::inner::{MapKey, MapValue};
use crate::map::Snapshot;
use crate::JiffyMap;

impl<K: MapKey, V: MapValue, C: VersionClock> OrderedIndex<K, V> for JiffyMap<K, V, C> {
    fn get(&self, key: &K) -> Option<V> {
        JiffyMap::get(self, key)
    }

    fn put(&self, key: K, value: V) {
        JiffyMap::put(self, key, value);
    }

    fn remove(&self, key: &K) -> bool {
        JiffyMap::remove(self, key).is_some()
    }

    fn scan_from(&self, lo: &K, n: usize, sink: &mut dyn FnMut(&K, &V)) {
        JiffyMap::scan_from(self, lo, n, sink)
    }

    fn batch_update(&self, batch: Batch<K, V>) {
        JiffyMap::batch(self, batch)
    }

    fn name(&self) -> &'static str {
        "jiffy"
    }

    fn revision_stats(&self) -> Option<index_api::RevisionStats> {
        let stats = self.debug_stats();
        Some(index_api::RevisionStats {
            nodes: stats.nodes as u64,
            entries: stats.entries as u64,
            max_revision_depth: stats.max_revision_depth as u64,
        })
    }
}

impl<K: MapKey, V: MapValue, C: VersionClock> ReadView<K, V> for Snapshot<'_, K, V, C> {
    fn version(&self) -> i64 {
        Snapshot::version(self)
    }

    fn get(&self, key: &K) -> Option<V> {
        Snapshot::get(self, key)
    }

    fn scan_from(&self, lo: &K, n: usize, sink: &mut dyn FnMut(&K, &V)) {
        Snapshot::scan_from(self, lo, n, sink)
    }

    fn advance_to(&mut self, version: i64) {
        Snapshot::advance_to(self, version)
    }
}

impl<K: MapKey, V: MapValue, C: VersionClock> SnapshotIndex<K, V> for JiffyMap<K, V, C> {
    fn pin_view(&self) -> Box<dyn ReadView<K, V> + '_> {
        Box::new(self.snapshot())
    }
}

impl<K: MapKey, V: MapValue, C: VersionClock> BulkLoad<K, V> for JiffyMap<K, V, C> {
    fn bulk_load(&self, entries: Vec<(K, V)>) {
        // Chunked atomic batches: each chunk rides the ordinary batch
        // machinery (one descriptor, one version), so a bulk load into a
        // shared map is a sequence of atomic steps rather than a torn
        // stream of puts. The primary caller (resharding's migration
        // copy) loads into maps nothing else can reach yet, where the
        // chunking is unobservable anyway. 512 keeps each descriptor's
        // revision work near the autoscaler's preferred revision sizes.
        const CHUNK: usize = 512;
        let mut entries = entries.into_iter().peekable();
        while entries.peek().is_some() {
            let ops: Vec<BatchOp<K, V>> =
                entries.by_ref().take(CHUNK).map(|(k, v)| BatchOp::Put(k, v)).collect();
            self.batch(Batch::new(ops));
        }
    }
}
