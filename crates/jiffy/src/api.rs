//! [`OrderedIndex`] implementation so Jiffy plugs into the shared
//! benchmark harness and conformance tests.

use index_api::{Batch, OrderedIndex};
use jiffy_clock::VersionClock;

use crate::inner::{MapKey, MapValue};
use crate::JiffyMap;

impl<K: MapKey, V: MapValue, C: VersionClock> OrderedIndex<K, V> for JiffyMap<K, V, C> {
    fn get(&self, key: &K) -> Option<V> {
        JiffyMap::get(self, key)
    }

    fn put(&self, key: K, value: V) {
        JiffyMap::put(self, key, value);
    }

    fn remove(&self, key: &K) -> bool {
        JiffyMap::remove(self, key).is_some()
    }

    fn scan_from(&self, lo: &K, n: usize, sink: &mut dyn FnMut(&K, &V)) {
        JiffyMap::scan_from(self, lo, n, sink)
    }

    fn batch_update(&self, batch: Batch<K, V>) {
        JiffyMap::batch(self, batch)
    }

    fn name(&self) -> &'static str {
        "jiffy"
    }
}
