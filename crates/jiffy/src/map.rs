//! The public `JiffyMap` API.

use std::fmt;
use std::sync::atomic::Ordering;

use jiffy_clock::{DefaultClock, VersionClock};

use crate::config::JiffyConfig;
use crate::inner::{JiffyInner, MapKey, MapValue};
use crate::snapshot::SnapSlot;

/// A lock-free, linearizable ordered key-value map with atomic batch
/// updates and consistent snapshots — the Rust reproduction of *Jiffy*
/// (Kobus, Kokociński, Wojciechowski; PPoPP 2022).
///
/// All operations take `&self` and may be called from any number of
/// threads concurrently (share the map via `Arc` or scoped borrows).
///
/// ```
/// use jiffy::JiffyMap;
///
/// let map = JiffyMap::new();
/// map.put(3, "three");
/// map.put(1, "one");
/// assert_eq!(map.get(&3), Some("three"));
///
/// // Atomic multi-key update:
/// map.batch(jiffy::Batch::new(vec![
///     jiffy::BatchOp::Put(2, "two"),
///     jiffy::BatchOp::Remove(1),
/// ]));
///
/// // Consistent snapshot + range scan:
/// let snap = map.snapshot();
/// let keys: Vec<i32> = snap.range(&0, usize::MAX).into_iter().map(|(k, _)| k).collect();
/// assert_eq!(keys, vec![2, 3]);
/// ```
pub struct JiffyMap<K, V, C: VersionClock = DefaultClock> {
    pub(crate) inner: JiffyInner<K, V, C>,
}

impl<K: MapKey, V: MapValue> JiffyMap<K, V, DefaultClock> {
    /// An empty map with the default configuration and clock.
    pub fn new() -> Self {
        Self::with_config(JiffyConfig::default())
    }

    /// An empty map with a custom configuration.
    pub fn with_config(config: JiffyConfig) -> Self {
        Self::with_clock_and_config(DefaultClock::default(), config)
    }
}

impl<K: MapKey, V: MapValue> Default for JiffyMap<K, V, DefaultClock> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: MapKey, V: MapValue, C: VersionClock> JiffyMap<K, V, C> {
    /// An empty map with a custom version clock (used by the clock
    /// ablation benchmarks; see [`jiffy_clock`]).
    pub fn with_clock_and_config(clock: C, config: JiffyConfig) -> Self {
        JiffyMap { inner: JiffyInner::new(clock, config) }
    }

    /// Insert or overwrite; returns the previous value if any.
    pub fn put(&self, key: K, value: V) -> Option<V> {
        self.inner.put(key, value)
    }

    /// Remove; returns the previous value if the key was present.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.inner.remove(key)
    }

    /// The most recent value for `key`.
    pub fn get(&self, key: &K) -> Option<V> {
        self.inner.get(key)
    }

    /// Whether `key` is currently present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Apply a batch of put/remove operations atomically: readers (and
    /// snapshots) observe either none or all of them.
    pub fn batch(&self, batch: index_api::Batch<K, V>) {
        self.inner.batch_update(batch.into_ops());
    }

    /// Acquire a consistent snapshot of the map. O(1); never blocks or
    /// slows down concurrent updates (§3.3.4). The snapshot pins history:
    /// hold it only as long as needed, or [`Snapshot::refresh`] it.
    pub fn snapshot(&self) -> Snapshot<'_, K, V, C> {
        // Clamp up to the published GC floor: the revision GC has
        // already reclaimed below it, so registering any lower would
        // read into freed history. With a healthy clock the clamp is a
        // no-op (the floor is derived from past clock reads); it is the
        // backstop that keeps snapshots memory-safe even if the clock
        // misbehaves (e.g. a cross-CPU TSC skew window, see
        // `jiffy_clock`'s `normalize_tsc`).
        let floor = self.inner.gc_floor();
        let v0 = (self.inner.clock.now() as i64).max(floor);
        let slot = self.inner.snapshots.register(v0);
        // Re-read after the registration is visible so the GC can never
        // have cut past our version (§3.3.4's "refresh immediately").
        let version = (self.inner.clock.now() as i64).max(v0);
        slot.refresh(version);
        Snapshot { map: self, slot, version }
    }

    /// Visit up to `n` entries with key `>= lo` (ascending) from a fresh
    /// snapshot. Convenience for [`Snapshot::scan_from`].
    pub fn scan_from(&self, lo: &K, n: usize, sink: &mut dyn FnMut(&K, &V)) {
        self.snapshot().scan_from(lo, n, sink)
    }

    /// Approximate number of entries (maintained with relaxed counters;
    /// exact under quiescence, drift-free but unordered under contention).
    pub fn len_approx(&self) -> usize {
        self.inner.len_estimate().max(0) as usize
    }

    /// Whether the map is (approximately) empty.
    pub fn is_empty_approx(&self) -> bool {
        self.len_approx() == 0
    }

    /// Structural telemetry for experiments: `(nodes, entries,
    /// mean_head_revision_size, max_revision_list_depth)`.
    pub fn debug_stats(&self) -> MapStats {
        let guard = &crossbeam_epoch::pin();
        let mut nodes = 0usize;
        let mut entries = 0usize;
        let mut depth_max = 0usize;
        let mut node_s = self.inner.base_node(guard);
        while !node_s.is_null() {
            // SAFETY: non-null and reached under the enclosing pin guard;
            // EBR defers reclamation of epoch-reachable nodes until unpin.
            let node = unsafe { node_s.deref() };
            let next = node.next.load(Ordering::Acquire, guard);
            if !node.is_terminated() && !node.is_temp_split() {
                nodes += 1;
                let mut rev_s = node.head.load(Ordering::Acquire, guard);
                let mut depth = 0usize;
                let mut first_len: Option<usize> = None;
                while !rev_s.is_null() && depth < 64 {
                    // SAFETY: non-null and reached under the enclosing pin guard;
                    // EBR defers reclamation of epoch-reachable nodes until unpin.
                    let rev = unsafe { rev_s.deref() };
                    if first_len.is_none() && rev.version() >= 0 {
                        first_len = Some(rev.data.len());
                    }
                    depth += 1;
                    // Follow *owning* edges only. Right-split revisions and
                    // merge terminators duplicate a `next` edge owned by
                    // another node's spine (see `node.rs`); once the GC floor
                    // passes the branch point that spine is cut and the
                    // duplicate dangles. Version-checked readers never descend
                    // it, and this unversioned walk must not either.
                    if !rev.owns_next() {
                        break;
                    }
                    rev_s = rev.next.load(Ordering::Acquire, guard);
                }
                entries += first_len.unwrap_or(0);
                depth_max = depth_max.max(depth);
            }
            node_s = next;
        }
        MapStats {
            nodes,
            entries,
            mean_revision_size: if nodes > 0 { entries as f64 / nodes as f64 } else { 0.0 },
            max_revision_depth: depth_max,
        }
    }

    /// [`debug_stats`](JiffyMap::debug_stats) folded into the shared
    /// observability gauge type, ready for
    /// [`jiffy_obs::ObsSnapshot::add_structure`].
    pub fn obs_stats(&self, label: &str) -> jiffy_obs::StructureStats {
        let s = self.debug_stats();
        jiffy_obs::StructureStats {
            label: label.to_string(),
            nodes: s.nodes as u64,
            entries: s.entries as u64,
            mean_revision_size: s.mean_revision_size,
            max_revision_depth: s.max_revision_depth as u64,
            shards: Vec::new(),
        }
    }
}

/// Structural statistics returned by [`JiffyMap::debug_stats`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MapStats {
    /// Live skip-list nodes (including the base node).
    pub nodes: usize,
    /// Entries summed over the newest finalized revision of each node.
    pub entries: usize,
    /// `entries / nodes` — the quantity the §3.3.6 policy steers.
    pub mean_revision_size: f64,
    /// Deepest revision list observed (paper §3.3.4: "revision lists
    /// contain at most 3-4 revisions at a time, and usually only 2").
    pub max_revision_depth: usize,
}

impl<K: MapKey, V: MapValue, C: VersionClock> fmt::Debug for JiffyMap<K, V, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JiffyMap").field("len_approx", &self.len_approx()).finish()
    }
}

/// A consistent, read-only view of a [`JiffyMap`] at one instant.
///
/// Acquiring a snapshot is O(1) and wait-free; it never blocks updates.
/// While held, it pins history: the internal GC keeps every revision the
/// snapshot might read. Dropping (or [`refresh`](Snapshot::refresh)-ing)
/// releases that history.
pub struct Snapshot<'a, K: MapKey, V: MapValue, C: VersionClock> {
    map: &'a JiffyMap<K, V, C>,
    slot: &'a SnapSlot,
    version: i64,
}

impl<'a, K: MapKey, V: MapValue, C: VersionClock> Snapshot<'a, K, V, C> {
    /// The snapshot version (a clock reading; monotonically related to
    /// operation linearization order).
    pub fn version(&self) -> i64 {
        self.version
    }

    /// The value of `key` at this snapshot.
    pub fn get(&self, key: &K) -> Option<V> {
        self.map.inner.get_at(key, self.version)
    }

    /// Visit up to `n` entries with key `>= lo`, ascending.
    pub fn scan_from(&self, lo: &K, n: usize, sink: &mut dyn FnMut(&K, &V)) {
        if n == 0 {
            return;
        }
        let mut left = n;
        self.map.inner.scan_at(lo, self.version, &mut |k, v| {
            sink(k, v);
            left -= 1;
            left > 0
        });
    }

    /// Collect up to `n` entries with key `>= lo`.
    pub fn range(&self, lo: &K, n: usize) -> Vec<(K, V)> {
        let mut out = Vec::new();
        self.scan_from(lo, n, &mut |k, v| out.push((k.clone(), v.clone())));
        out
    }

    /// Collect the entries in `[lo, hi)`.
    pub fn range_bounded(&self, lo: &K, hi: &K) -> Vec<(K, V)> {
        let mut out = Vec::new();
        self.map.inner.scan_at(lo, self.version, &mut |k, v| {
            if k >= hi {
                return false;
            }
            out.push((k.clone(), v.clone()));
            true
        });
        out
    }

    /// Stream every entry with key in `[lo, hi)` — `None` meaning
    /// unbounded on that side — as of this snapshot's version, ascending.
    ///
    /// This is the export surface of snapshot-assisted shard migration
    /// (`jiffy-shard`'s online resharding): a resharder pins a snapshot
    /// at its *cut version*, exports the migrating key range into the new
    /// shard layout with this method, and later drains the delta above
    /// the cut the same way. Unlike [`scan_from`](Snapshot::scan_from) it
    /// has no entry limit and can start below the smallest key (`lo =
    /// None`), which matters because a shard's range is half-open at both
    /// extremes.
    pub fn export_range(&self, lo: Option<&K>, hi: Option<&K>, sink: &mut dyn FnMut(&K, &V)) {
        let mut visit = |k: &K, v: &V| -> bool {
            if let Some(hi) = hi {
                if k >= hi {
                    return false;
                }
            }
            sink(k, v);
            true
        };
        match lo {
            None => self.map.inner.scan_min(self.version, &mut visit),
            Some(lo) => self.map.inner.scan_at(lo, self.version, &mut visit),
        }
    }

    /// Exact number of entries at this snapshot (O(n): scans).
    pub fn len(&self) -> usize {
        let mut n = 0usize;
        if let Some(first) = self.first_key() {
            self.map.inner.scan_at(&first, self.version, &mut |_, _| {
                n += 1;
                true
            });
        }
        n
    }

    /// Whether the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.first_key().is_none()
    }

    fn first_key(&self) -> Option<K> {
        // Scan from the base node's range start: walk from the smallest
        // representable position by starting at the base node. We emulate
        // "-inf" by scanning from the first node's first entry.
        let mut first = None;
        self.map.inner.scan_min(self.version, &mut |k, _| {
            first = Some(k.clone());
            false
        });
        first
    }

    /// Iterate all entries of the snapshot, ascending (chunked
    /// internally; consistent across the whole iteration).
    pub fn iter(&self) -> crate::iter::SnapshotIter<'_, 'a, K, V, C> {
        crate::iter::SnapshotIter::new(self, None)
    }

    /// Iterate entries with key `>= lo`, ascending.
    pub fn iter_from(&self, lo: &K) -> crate::iter::SnapshotIter<'_, 'a, K, V, C> {
        crate::iter::SnapshotIter::new(self, Some(lo.clone()))
    }

    /// Collect up to `n` entries from the start of the key space
    /// (iterator support; the public `range` APIs need a lower bound).
    pub(crate) fn scan_min_into(&self, n: usize, out: &mut Vec<(K, V)>) {
        if n == 0 {
            return;
        }
        self.map.inner.scan_min(self.version, &mut |k, v| {
            out.push((k.clone(), v.clone()));
            out.len() < n
        });
    }

    /// Advance the snapshot to "now", releasing pinned history. The
    /// version never moves backwards (the registered slot must not
    /// decrease while held, §3.3.4 — also the backstop against a
    /// non-monotone clock reading).
    pub fn refresh(&mut self) {
        let v = (self.map.inner.clock.now() as i64).max(self.version);
        self.slot.refresh(v);
        self.version = v;
    }

    /// Advance the snapshot's read version to `version`; a no-op if the
    /// snapshot is already at or past it. The registered slot only moves
    /// forward, so GC safety is preserved (§3.3.4: the published version
    /// must never decrease while held). Cross-index coordinators (see
    /// `jiffy-shard`) use this to align snapshots of several maps that
    /// share one clock on a single cut version.
    pub fn advance_to(&mut self, version: i64) {
        if version > self.version {
            self.slot.refresh(version);
            self.version = version;
        }
    }
}

impl<'a, K: MapKey, V: MapValue, C: VersionClock> Drop for Snapshot<'a, K, V, C> {
    fn drop(&mut self) {
        self.slot.release();
    }
}

impl<K: MapKey, V: MapValue, C: VersionClock> JiffyInner<K, V, C> {
    /// Scan from the beginning of the key space (snapshot `len()` /
    /// iteration support; there is no "-inf" key to pass to `scan_at`).
    pub(crate) fn scan_min(&self, snap: i64, sink: &mut dyn FnMut(&K, &V) -> bool) {
        // The base node's range starts at -inf: resolve it directly, then
        // continue with the ordinary keyed scan from the successor's key.
        let guard = &crossbeam_epoch::pin();
        let resume_at: Option<K>;
        let mut stopped = false;
        loop {
            let base_s = self.base_node(guard);
            // SAFETY: non-null and reached under the enclosing pin guard;
            // EBR defers reclamation of epoch-reachable nodes until unpin.
            let base = unsafe { base_s.deref() };
            let next_snapshot = base.next.load(Ordering::Acquire, guard);
            let head_s = base.head.load(Ordering::Acquire, guard);
            // SAFETY: non-null and reached under the enclosing pin guard;
            // EBR defers reclamation of epoch-reachable nodes until unpin.
            if !next_snapshot.is_null() && unsafe { next_snapshot.deref() }.is_temp_split() {
                self.help_temp_split_node(base_s, next_snapshot, guard);
                continue;
            }
            // SAFETY: non-null and reached under the enclosing pin guard;
            // EBR defers reclamation of epoch-reachable nodes until unpin.
            let head = unsafe { head_s.deref() };
            if head.is_merge_terminator() {
                self.help_merge_terminator(base_s, head_s, guard);
                continue;
            }
            if base.next.load(Ordering::Acquire, guard) != next_snapshot {
                continue;
            }
            let upper: Option<K> = if next_snapshot.is_null() {
                None
            } else {
                // SAFETY: non-null and reached under the enclosing pin guard;
                // EBR defers reclamation of epoch-reachable nodes until unpin.
                unsafe { next_snapshot.deref() }.key.as_key().cloned()
            };
            self.resolve_window(
                base_s,
                head_s,
                snap,
                None,
                upper.as_ref(),
                &mut |k, v| {
                    let cont = sink(k, v);
                    if !cont {
                        stopped = true;
                    }
                    cont
                },
                guard,
            );
            resume_at = upper;
            break;
        }
        if stopped {
            return;
        }
        if let Some(k) = resume_at {
            self.scan_at(&k, snap, sink);
        }
    }
}

// SAFETY: `Snapshot` only reads; the map reference and slot are Sync.
unsafe impl<'a, K: MapKey, V: MapValue, C: VersionClock> Send for Snapshot<'a, K, V, C> {}
unsafe impl<'a, K: MapKey, V: MapValue, C: VersionClock> Sync for Snapshot<'a, K, V, C> {}
