//! Iteration over snapshots.
//!
//! Range scans in Jiffy deliver entries through a callback
//! ([`Snapshot::scan_from`]); this module layers a standard Rust
//! [`Iterator`] on top by fetching entries in chunks and resuming each
//! chunk after the last key seen — the snapshot guarantees the view
//! cannot change between chunks, so the composition is still a
//! consistent iteration.

use jiffy_clock::VersionClock;

use crate::inner::{MapKey, MapValue};
use crate::map::Snapshot;

/// How many entries [`SnapshotIter`] fetches per internal scan.
const CHUNK: usize = 256;

/// A chunked, consistent iterator over a [`Snapshot`].
pub struct SnapshotIter<'s, 'a, K: MapKey, V: MapValue, C: VersionClock> {
    snap: &'s Snapshot<'a, K, V, C>,
    buf: std::vec::IntoIter<(K, V)>,
    /// Resume position: scan strictly after this key.
    resume_after: Option<K>,
    /// Set once the underlying scan returned fewer than CHUNK entries.
    exhausted: bool,
}

impl<'s, 'a, K: MapKey, V: MapValue, C: VersionClock> SnapshotIter<'s, 'a, K, V, C> {
    pub(crate) fn new(snap: &'s Snapshot<'a, K, V, C>, from: Option<K>) -> Self {
        let mut it = SnapshotIter {
            snap,
            buf: Vec::new().into_iter(),
            resume_after: None,
            exhausted: false,
        };
        it.fill(from, true);
        it
    }

    fn fill(&mut self, from: Option<K>, inclusive: bool) {
        let mut out: Vec<(K, V)> = Vec::with_capacity(CHUNK);
        match from {
            Some(lo) => {
                // Fetch one extra so an exclusive resume can drop `lo`.
                let want = if inclusive { CHUNK } else { CHUNK + 1 };
                self.snap.scan_from(&lo, want, &mut |k, v| {
                    if inclusive || k != &lo {
                        out.push((k.clone(), v.clone()));
                    }
                });
            }
            None => {
                self.snap.scan_min_into(CHUNK, &mut out);
            }
        }
        if out.len() < CHUNK {
            self.exhausted = true;
        }
        self.resume_after = out.last().map(|(k, _)| k.clone());
        self.buf = out.into_iter();
    }
}

impl<'s, 'a, K: MapKey, V: MapValue, C: VersionClock> Iterator for SnapshotIter<'s, 'a, K, V, C> {
    type Item = (K, V);

    fn next(&mut self) -> Option<(K, V)> {
        if let Some(kv) = self.buf.next() {
            return Some(kv);
        }
        if self.exhausted {
            return None;
        }
        let resume = self.resume_after.take();
        match resume {
            Some(last) => self.fill(Some(last), false),
            None => return None,
        }
        self.buf.next()
    }
}

#[cfg(test)]
mod tests {
    use crate::{JiffyConfig, JiffyMap};

    fn tiny_map(n: u64) -> JiffyMap<u64, u64> {
        let map = JiffyMap::with_config(JiffyConfig {
            min_revision_size: 2,
            max_revision_size: 8,
            fixed_revision_size: Some(4),
            ..Default::default()
        });
        for k in 0..n {
            map.put(k * 3, k);
        }
        map
    }

    #[test]
    fn iterates_everything_in_order() {
        let map = tiny_map(1000);
        let snap = map.snapshot();
        let got: Vec<(u64, u64)> = snap.iter().collect();
        assert_eq!(got.len(), 1000);
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(got[0], (0, 0));
        assert_eq!(got[999], (2997, 999));
    }

    #[test]
    fn iter_from_bound() {
        let map = tiny_map(100);
        let snap = map.snapshot();
        let got: Vec<u64> = snap.iter_from(&150).map(|(k, _)| k).collect();
        assert_eq!(got[0], 150);
        assert_eq!(got.len(), 50);
        // Start between keys.
        let got: Vec<u64> = snap.iter_from(&151).map(|(k, _)| k).collect();
        assert_eq!(got[0], 153);
    }

    #[test]
    fn iter_on_empty_map() {
        let map: JiffyMap<u64, u64> = JiffyMap::new();
        let snap = map.snapshot();
        assert_eq!(snap.iter().count(), 0);
    }

    #[test]
    fn iter_spans_chunk_boundaries_exactly() {
        // Sizes around the internal chunk size (256).
        for n in [255u64, 256, 257, 512, 513] {
            let map = tiny_map(n);
            let snap = map.snapshot();
            assert_eq!(snap.iter().count() as u64, n, "n={n}");
        }
    }

    #[test]
    fn iter_is_isolated_from_updates() {
        let map = tiny_map(600);
        let snap = map.snapshot();
        let mut it = snap.iter();
        // Consume half, then churn the live map.
        for _ in 0..300 {
            it.next().unwrap();
        }
        for k in 0..600 {
            map.remove(&(k * 3));
        }
        // The remaining half still comes from the snapshot.
        assert_eq!(it.count(), 300);
    }
}
