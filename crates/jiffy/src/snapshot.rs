//! Snapshot registration (paper §3.3.4).
//!
//! A thread that wants a consistent view registers in a shared lock-free
//! list, publishing its *snapshot version* (a clock read). Jiffy's inner
//! garbage collector scans the list for the minimum registered version to
//! learn which revisions can never be read again.
//!
//! The registry uses the classic hazard-record scheme: slots are pushed
//! once and *reused* (claimed with a CAS on an `active` flag), never
//! unlinked — so registration is lock-free, there is no ABA, and the list
//! length is bounded by the peak number of simultaneously live snapshots.
//!
//! Safety of the min computation: a scanner may miss a slot that is being
//! claimed concurrently, but any snapshot registered after the scan began
//! gets a version no lower than the clock *at the moment the scan began*
//! — which is why `min_version` caps its result by a clock value read
//! before the walk (see the method docs for the preemption race the cap
//! closes). A stale minimum is therefore always a *conservative* (lower)
//! bound — it can only retain extra garbage, never free something a
//! reader needs. For the same reason a reused slot's stale version
//! (visible for an instant before the claimer stores its own) is
//! harmless: it is older, hence lower.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};

use jiffy_clock::VersionClock;

/// One registration slot. Slots live until the registry is dropped.
pub(crate) struct SnapSlot {
    version: AtomicI64,
    active: AtomicBool,
    next: *mut SnapSlot,
}

// SAFETY: slots are plain atomics + an immutable next pointer; shared
// across threads by design.
unsafe impl Send for SnapSlot {}
unsafe impl Sync for SnapSlot {}

impl SnapSlot {
    #[inline]
    pub(crate) fn version(&self) -> i64 {
        self.version.load(Ordering::Acquire)
    }

    /// Refresh the published snapshot version (a plain store; §3.3.4 notes
    /// this "does not even require a CAS"). Must not decrease while held.
    #[inline]
    pub(crate) fn refresh(&self, version: i64) {
        debug_assert!(version >= 0);
        self.version.store(version, Ordering::Release);
    }

    /// Release the slot for reuse by a future snapshot.
    #[inline]
    pub(crate) fn release(&self) {
        self.active.store(false, Ordering::Release);
    }
}

/// The lock-free snapshot list.
pub(crate) struct SnapRegistry {
    head: std::sync::atomic::AtomicPtr<SnapSlot>,
}

impl SnapRegistry {
    pub(crate) fn new() -> Self {
        SnapRegistry { head: std::sync::atomic::AtomicPtr::new(std::ptr::null_mut()) }
    }

    /// Register a snapshot at `version`; returns the claimed slot.
    pub(crate) fn register(&self, version: i64) -> &SnapSlot {
        debug_assert!(version >= 0);
        // First, try to reuse an inactive slot.
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: slots are never freed while the registry is alive
            // (only `Drop` reclaims them), so any pointer read from the
            // list is valid here.
            let slot = unsafe { &*cur };
            if !slot.active.load(Ordering::Relaxed)
                && slot
                    .active
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                // Claimed. A concurrent min-scan may briefly observe the
                // previous (older = lower = safe) version.
                slot.refresh(version);
                return slot;
            }
            cur = slot.next;
        }
        // No free slot: push a new one (version set before publication).
        let slot = Box::into_raw(Box::new(SnapSlot {
            version: AtomicI64::new(version),
            active: AtomicBool::new(true),
            next: std::ptr::null_mut(),
        }));
        loop {
            let head = self.head.load(Ordering::Acquire);
            // SAFETY: `slot` is ours until the CAS below publishes it.
            unsafe { (*slot).next = head };
            if self.head.compare_exchange(head, slot, Ordering::AcqRel, Ordering::Acquire).is_ok() {
                // SAFETY: now published; slots live until the registry drops.
                return unsafe { &*slot };
            }
        }
    }

    /// Minimum registered snapshot version, **capped by a clock value
    /// read before the walk begins**; the pre-walk value alone if no
    /// snapshot is active.
    ///
    /// The cap is what makes the result a safe GC floor under
    /// preemption. A scanner can miss a slot whose claim races the walk;
    /// the claimer re-reads the clock *after* claiming (see
    /// `JiffyMap::snapshot`), so its final version is `>=` any clock
    /// value read before the claim — in particular `>=` our pre-walk
    /// read. Without the cap, both of the walk's other inputs can exceed
    /// that bound when the scanner is descheduled mid-walk: the old code
    /// read the no-snapshot fallback *after* the walk (deschedule after
    /// the walk, reader registers at 110, scanner wakes and reads 150 →
    /// floor 150 over a live reader at 110), and a slot visited late in
    /// the walk can carry a version stamped after the missed claim. Both
    /// holes let the §3.3.4 revision GC cut history a just-registered
    /// snapshot still needs.
    pub(crate) fn min_version<C: VersionClock>(&self, clock: &C) -> i64 {
        let pre_walk = clock.now() as i64;
        // The widest race window of this function: between the pre-walk
        // clock read and the slot walk, a racing claimer can register a
        // snapshot the walk will miss — the cap above is what keeps the
        // result safe. Let the explorer stretch the window.
        #[cfg(feature = "audit-sched")]
        jiffy_audit::sched::probe("snapshot::floor-walk");
        let mut min: Option<i64> = None;
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: slots live until the registry is dropped.
            let slot = unsafe { &*cur };
            if slot.active.load(Ordering::Acquire) {
                let v = slot.version();
                min = Some(min.map_or(v, |m: i64| m.min(v)));
            }
            cur = slot.next;
        }
        let floor = min.map_or(pre_walk, |m| m.min(pre_walk));
        if let Some(m) = min {
            // Trace only walks that saw a live snapshot (the idle path
            // stays event-free): `b = 1` means the pre-walk cap bound
            // the floor — the exact outcome the §3.3.4 race is about.
            jiffy_obs::trace_event!(GcFloorAdvance, floor, m as u64, (m >= pre_walk) as u64);
        }
        floor
    }

    /// Number of slots ever allocated (for tests/telemetry).
    #[allow(dead_code)] // exercised by unit tests
    pub(crate) fn slot_count(&self) -> usize {
        let mut n = 0;
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            n += 1;
            // SAFETY: slots live until the registry is dropped.
            cur = unsafe { (*cur).next };
        }
        n
    }
}

impl Drop for SnapRegistry {
    fn drop(&mut self) {
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: `&mut self` means no reader can hold a slot
            // reference; every node was Box-allocated in `register`.
            let boxed = unsafe { Box::from_raw(cur) };
            cur = boxed.next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jiffy_clock::AtomicClock;

    /// Advance `clock` past `target` (slot versions must be past clock
    /// reads for the pre-walk cap to be inactive, as in real use).
    fn advance_past(clock: &AtomicClock, target: i64) {
        while (clock.now() as i64) <= target {}
    }

    #[test]
    fn register_and_min() {
        let clock = AtomicClock::new();
        let reg = SnapRegistry::new();
        let a = reg.register(100);
        let b = reg.register(50);
        advance_past(&clock, 100);
        assert_eq!(reg.min_version(&clock), 50);
        b.release();
        assert_eq!(reg.min_version(&clock), 100);
        a.release();
        // No active snapshots: min falls back to a fresh clock read.
        let now_floor = clock.now() as i64;
        assert!(reg.min_version(&clock) >= now_floor);
    }

    #[test]
    fn min_never_exceeds_a_pre_call_clock_read() {
        // The §3.3.4 floor must be capped by a clock value read before
        // the slot walk: a slot claimed-but-missed during the walk
        // re-reads the clock after claiming, so its version is >= any
        // pre-walk read. Registered versions *above* the current clock
        // (impossible in real use, adversarial here) must not leak
        // through as the floor.
        let clock = AtomicClock::new();
        let reg = SnapRegistry::new();
        let _slot = reg.register(1_000_000);
        let pre = clock.now() as i64;
        let floor = reg.min_version(&clock);
        assert!(
            floor <= pre + 1,
            "floor {floor} exceeds the pre-call clock {pre}: unsafe for missed registrations"
        );
    }

    #[test]
    fn slots_are_reused() {
        let reg = SnapRegistry::new();
        let a = reg.register(1);
        a.release();
        let _b = reg.register(2);
        assert_eq!(reg.slot_count(), 1, "released slot must be reused");
        let _c = reg.register(3);
        assert_eq!(reg.slot_count(), 2);
    }

    #[test]
    fn refresh_advances_version() {
        let clock = AtomicClock::new();
        let reg = SnapRegistry::new();
        let s = reg.register(10);
        advance_past(&clock, 10);
        assert_eq!(reg.min_version(&clock), 10);
        s.refresh(500);
        assert_eq!(s.version(), 500);
        advance_past(&clock, 500);
        assert_eq!(reg.min_version(&clock), 500);
    }

    /// A monotone clock that yields the thread on a fraction of reads —
    /// injected preemption at the exact points (`clock.now()` calls)
    /// where the §3.3.4 floor race needs the scheduler to strike. On the
    /// pre-fix `min_version` (post-walk fallback read, uncapped minima)
    /// this makes `floor_never_passes_a_racing_registration` fail within
    /// milliseconds; the pre-walk cap makes it a theorem.
    struct YieldyClock {
        inner: AtomicClock,
        calls: std::sync::atomic::AtomicU64,
    }

    impl YieldyClock {
        fn new() -> Self {
            YieldyClock { inner: AtomicClock::new(), calls: std::sync::atomic::AtomicU64::new(0) }
        }
    }

    impl VersionClock for YieldyClock {
        fn now(&self) -> u64 {
            if self.calls.fetch_add(1, Ordering::Relaxed) % 7 == 0 {
                std::thread::yield_now();
            }
            self.inner.now()
        }

        fn name(&self) -> &'static str {
            "yieldy"
        }
    }

    /// The §3.3.4 floor race replayed *deterministically* through the
    /// `snapshot::floor-walk` probe: the scanner is parked between its
    /// pre-walk clock read and the slot walk while a registration
    /// completes (claim, re-read clock, refresh) in the window. The
    /// pre-walk cap makes the resulting floor safe; the pre-fix code
    /// (post-walk fallback read) would return a floor above the live
    /// registration. One of the three historical-bug replays the
    /// audit-sched toolchain pins down (see jiffy-audit).
    #[cfg(feature = "audit-sched")]
    #[test]
    fn floor_walk_probe_replays_the_racing_registration() {
        use std::sync::atomic::AtomicBool;
        use std::sync::{mpsc, Arc, Mutex};
        use std::time::Duration;

        let clock = AtomicClock::new();
        let reg = SnapRegistry::new();
        let (tx_win, rx_win) = mpsc::channel::<()>();
        let (tx_go, rx_go) = mpsc::channel::<()>();
        let rx_go = Mutex::new(rx_go);
        let armed = Arc::new(AtomicBool::new(true));
        let h_armed = Arc::clone(&armed);
        let _h = jiffy_audit::sched::install(Arc::new(move |site| {
            if site == "snapshot::floor-walk" && h_armed.swap(false, Ordering::SeqCst) {
                tx_win.send(()).unwrap();
                rx_go.lock().unwrap().recv().unwrap();
            }
        }));

        std::thread::scope(|s| {
            let scanner = s.spawn(|| reg.min_version(&clock));
            rx_win
                .recv_timeout(Duration::from_secs(10))
                .expect("the scanner never reached the probe");
            // The racing registration, exactly JiffyMap::snapshot's
            // protocol: claim at a first clock read, then re-read the
            // clock and refresh. Both reads are AFTER the scanner's
            // pre-walk read, so the cap binds.
            let v0 = clock.now() as i64;
            let slot = reg.register(v0);
            let version = clock.now() as i64;
            slot.refresh(version);
            tx_go.send(()).unwrap();
            let floor = scanner.join().unwrap();
            assert!(
                floor <= version,
                "GC floor {floor} passed the racing registration at {version}"
            );
            slot.release();

            // Golden flight-recorder trace: the walk saw the racing
            // registration and recorded a cap-bound floor (b = 1).
            let golden: Vec<String> = std::fs::read_to_string(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/tests/fixtures/floor_walk_race.golden"
            ))
            .expect("golden fixture")
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(String::from)
            .collect();
            let trace = jiffy_obs::merged_trace();
            let mut kinds: Vec<&str> = trace
                .iter()
                .filter(|e| e.kind == jiffy_obs::EventKind::GcFloorAdvance)
                .map(|e| e.kind.name())
                .collect();
            kinds.dedup();
            assert_eq!(kinds, golden, "floor-walk kind set diverged from the golden trace");
            assert!(
                trace.iter().any(|e| e.kind == jiffy_obs::EventKind::GcFloorAdvance
                    && e.stamp == floor
                    && e.b == 1),
                "no cap-bound floor event recorded for the replayed walk"
            );
        });
    }

    #[test]
    fn floor_never_passes_a_racing_registration() {
        // Safety property of the GC floor: once a registration has
        // re-read the clock and refreshed its slot (the §3.3.4 "refresh
        // immediately" step, exactly what `JiffyMap::snapshot` does), no
        // floor published afterwards may exceed that slot's version —
        // otherwise the revision GC can reclaim history the snapshot
        // still needs. `published` plays the role of `cached_min`.
        use std::sync::atomic::AtomicI64;
        let clock = YieldyClock::new();
        let reg = SnapRegistry::new();
        let published = AtomicI64::new(0);
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let (reg, clock, published, stop) = (&reg, &clock, &published, &stop);
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let floor = reg.min_version(clock);
                        published.fetch_max(floor, Ordering::AcqRel);
                    }
                });
            }
            for _ in 0..2 {
                let (reg, clock, published, stop) = (&reg, &clock, &published, &stop);
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        // JiffyMap::snapshot's registration protocol...
                        let v0 = clock.now() as i64;
                        let slot = reg.register(v0);
                        let version = clock.now() as i64;
                        slot.refresh(version);
                        // ...then hold the snapshot briefly, as any real
                        // reader does. The invariant under test: while a
                        // slot is active at `version`, no published
                        // floor may exceed it (a violating floor lands
                        // moments after the refresh, when the suspended
                        // scanner wakes up — so keep re-checking).
                        for _ in 0..40 {
                            let floor = published.load(Ordering::Acquire);
                            assert!(
                                floor <= version,
                                "GC floor {floor} passed a live registration at {version}: \
                                 min_version raced the registry walk"
                            );
                            std::thread::yield_now();
                        }
                        slot.release();
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(400));
            stop.store(true, Ordering::Relaxed);
        });
    }

    #[test]
    fn concurrent_register_release() {
        use std::sync::Arc;
        let reg = Arc::new(SnapRegistry::new());
        let mut handles = vec![];
        for t in 0..8 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    let s = reg.register(t * 1000 + i);
                    assert!(s.version() >= 0);
                    s.release();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Bounded by peak concurrency, not total registrations.
        assert!(reg.slot_count() <= 8, "slots: {}", reg.slot_count());
    }

    #[test]
    fn min_over_many() {
        let clock = AtomicClock::new();
        let reg = SnapRegistry::new();
        let slots: Vec<_> = (0..10).map(|i| reg.register(1000 - i)).collect();
        advance_past(&clock, 1000);
        assert_eq!(reg.min_version(&clock), 991);
        for s in slots {
            s.release();
        }
    }
}
