//! Snapshot registration (paper §3.3.4).
//!
//! A thread that wants a consistent view registers in a shared lock-free
//! list, publishing its *snapshot version* (a clock read). Jiffy's inner
//! garbage collector scans the list for the minimum registered version to
//! learn which revisions can never be read again.
//!
//! The registry uses the classic hazard-record scheme: slots are pushed
//! once and *reused* (claimed with a CAS on an `active` flag), never
//! unlinked — so registration is lock-free, there is no ABA, and the list
//! length is bounded by the peak number of simultaneously live snapshots.
//!
//! Safety of the min computation: a scanner may miss a slot that is being
//! claimed concurrently, but any snapshot registered after the scan began
//! gets a version no lower than the clock at that moment, so a stale
//! minimum is always a *conservative* (lower) bound — it can only retain
//! extra garbage, never free something a reader needs. For the same
//! reason a reused slot's stale version (visible for an instant before the
//! claimer stores its own) is harmless: it is older, hence lower.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};

use jiffy_clock::VersionClock;

/// One registration slot. Slots live until the registry is dropped.
pub(crate) struct SnapSlot {
    version: AtomicI64,
    active: AtomicBool,
    next: *mut SnapSlot,
}

// SAFETY: slots are plain atomics + an immutable next pointer; shared
// across threads by design.
unsafe impl Send for SnapSlot {}
unsafe impl Sync for SnapSlot {}

impl SnapSlot {
    #[inline]
    pub(crate) fn version(&self) -> i64 {
        self.version.load(Ordering::Acquire)
    }

    /// Refresh the published snapshot version (a plain store; §3.3.4 notes
    /// this "does not even require a CAS"). Must not decrease while held.
    #[inline]
    pub(crate) fn refresh(&self, version: i64) {
        debug_assert!(version >= 0);
        self.version.store(version, Ordering::Release);
    }

    /// Release the slot for reuse by a future snapshot.
    #[inline]
    pub(crate) fn release(&self) {
        self.active.store(false, Ordering::Release);
    }
}

/// The lock-free snapshot list.
pub(crate) struct SnapRegistry {
    head: std::sync::atomic::AtomicPtr<SnapSlot>,
}

impl SnapRegistry {
    pub(crate) fn new() -> Self {
        SnapRegistry { head: std::sync::atomic::AtomicPtr::new(std::ptr::null_mut()) }
    }

    /// Register a snapshot at `version`; returns the claimed slot.
    pub(crate) fn register(&self, version: i64) -> &SnapSlot {
        debug_assert!(version >= 0);
        // First, try to reuse an inactive slot.
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            let slot = unsafe { &*cur };
            if !slot.active.load(Ordering::Relaxed)
                && slot
                    .active
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                // Claimed. A concurrent min-scan may briefly observe the
                // previous (older = lower = safe) version.
                slot.refresh(version);
                return slot;
            }
            cur = slot.next;
        }
        // No free slot: push a new one (version set before publication).
        let slot = Box::into_raw(Box::new(SnapSlot {
            version: AtomicI64::new(version),
            active: AtomicBool::new(true),
            next: std::ptr::null_mut(),
        }));
        loop {
            let head = self.head.load(Ordering::Acquire);
            unsafe { (*slot).next = head };
            if self.head.compare_exchange(head, slot, Ordering::AcqRel, Ordering::Acquire).is_ok() {
                return unsafe { &*slot };
            }
        }
    }

    /// Minimum registered snapshot version; `now` (a fresh clock read) if
    /// no snapshot is active. The result is a safe lower bound per the
    /// module-level argument.
    pub(crate) fn min_version<C: VersionClock>(&self, clock: &C) -> i64 {
        let mut min: Option<i64> = None;
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            let slot = unsafe { &*cur };
            if slot.active.load(Ordering::Acquire) {
                let v = slot.version();
                min = Some(min.map_or(v, |m: i64| m.min(v)));
            }
            cur = slot.next;
        }
        min.unwrap_or_else(|| clock.now() as i64)
    }

    /// Number of slots ever allocated (for tests/telemetry).
    #[allow(dead_code)] // exercised by unit tests
    pub(crate) fn slot_count(&self) -> usize {
        let mut n = 0;
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            n += 1;
            cur = unsafe { (*cur).next };
        }
        n
    }
}

impl Drop for SnapRegistry {
    fn drop(&mut self) {
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            let boxed = unsafe { Box::from_raw(cur) };
            cur = boxed.next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jiffy_clock::AtomicClock;

    #[test]
    fn register_and_min() {
        let clock = AtomicClock::new();
        let reg = SnapRegistry::new();
        let a = reg.register(100);
        let b = reg.register(50);
        assert_eq!(reg.min_version(&clock), 50);
        b.release();
        assert_eq!(reg.min_version(&clock), 100);
        a.release();
        // No active snapshots: min falls back to "now".
        let now_floor = clock.now() as i64;
        assert!(reg.min_version(&clock) >= now_floor);
    }

    #[test]
    fn slots_are_reused() {
        let reg = SnapRegistry::new();
        let a = reg.register(1);
        a.release();
        let _b = reg.register(2);
        assert_eq!(reg.slot_count(), 1, "released slot must be reused");
        let _c = reg.register(3);
        assert_eq!(reg.slot_count(), 2);
    }

    #[test]
    fn refresh_advances_version() {
        let clock = AtomicClock::new();
        let reg = SnapRegistry::new();
        let s = reg.register(10);
        assert_eq!(reg.min_version(&clock), 10);
        s.refresh(500);
        assert_eq!(s.version(), 500);
        assert_eq!(reg.min_version(&clock), 500);
    }

    #[test]
    fn concurrent_register_release() {
        use std::sync::Arc;
        let reg = Arc::new(SnapRegistry::new());
        let mut handles = vec![];
        for t in 0..8 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    let s = reg.register(t * 1000 + i);
                    assert!(s.version() >= 0);
                    s.release();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Bounded by peak concurrency, not total registrations.
        assert!(reg.slot_count() <= 8, "slots: {}", reg.slot_count());
    }

    #[test]
    fn min_over_many() {
        let clock = AtomicClock::new();
        let reg = SnapRegistry::new();
        let slots: Vec<_> = (0..10).map(|i| reg.register(1000 - i)).collect();
        assert_eq!(reg.min_version(&clock), 991);
        for s in slots {
            s.release();
        }
    }
}
