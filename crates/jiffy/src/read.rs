//! Lookup operations (paper Algorithm 2).
//!
//! `get` (newest) walks the revision list for the first *finalized*
//! revision; `get_at` (snapshot) applies the §3.2 rules:
//!
//! * `|v| > s` — skip the revision (its final version will exceed `s`);
//! * `v >= 0 && v <= s` — this is the revision to read;
//! * `v < 0 && -v <= s` — help complete the update, then re-evaluate.
//!
//! Skipping a merge revision descends into the branch that covers the
//! key (`key >= right_key` → right branch), which keeps the merged
//! node's history reachable even before/without the merge being visible.
//!
//! # The flat fast path
//!
//! In steady state the head revision of the located node is a
//! *finalized regular* revision — no pending version to help, no split
//! or merge branch to resolve. [`get`](JiffyInner::get) and
//! [`get_at`](JiffyInner::get_at) short-circuit that case with a
//! straight-line check sequence (head finalized+regular → snapshot
//! bound → coverage) and answer directly from the head's entry array,
//! skipping the generic locate loop's branch dispatch and the branchy
//! chain walk. The check sequence brackets the head read between two
//! reads of the node's successor exactly like the generic loop does
//! (unchanged `next`, still covering the key), so it gives the same
//! guarantee — it just never loops.
//! Anything unusual (pending head, merge terminator, split/merge
//! revision, terminated node, stale coverage) bails to the slow path —
//! the fast path never helps and never retries. Setting the
//! `JIFFY_DISABLE_FAST_PATH=1` environment variable (read once, at
//! first use) forces every lookup down the generic path; the
//! conformance suites run both ways and expect identical results.

use std::sync::atomic::Ordering;
use std::sync::OnceLock;

use crossbeam_epoch::{self as epoch, Guard, Shared};
use crossbeam_utils::prefetch_read;
use jiffy_clock::VersionClock;

use crate::autoscale::fold_read;
use crate::backoff::HelpBackoff;
use crate::inner::{JiffyInner, MapKey, MapValue};
use crate::node::{Node, RevKind, Revision};

/// A node plus its head revision, as located for a read.
pub(crate) type NodeAndHead<'g, K, V> = (Shared<'g, Node<K, V>>, Shared<'g, Revision<K, V>>);

/// Whether the flat point-get fast path is enabled (default: yes;
/// `JIFFY_DISABLE_FAST_PATH=1` forces the generic path, for the
/// equivalence test matrix and for apples-to-apples counter runs).
#[inline]
pub(crate) fn fast_path_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("JIFFY_DISABLE_FAST_PATH") {
        Ok(v) => v.is_empty() || v == "0",
        Err(_) => true,
    })
}

impl<K: MapKey, V: MapValue, C: VersionClock> JiffyInner<K, V, C> {
    /// Locate the node for a read: helps structure modifications (temp
    /// split nodes inside the traversal, merge terminators here) but not
    /// regular pending updates, per Algorithm 2.
    pub(crate) fn locate_for_read<'g>(&self, key: &K, guard: &'g Guard) -> NodeAndHead<'g, K, V> {
        let mut backoff = HelpBackoff::new();
        #[cfg(feature = "perf-counters")]
        let mut iters = 0u64;
        loop {
            #[cfg(feature = "perf-counters")]
            {
                iters += 1;
                if iters > 1 {
                    crate::counters::bump(|c| c.locate_retries += 1);
                }
            }
            let node_s = self.find_node_for_key(key, guard);
            // SAFETY: non-null and reached under the enclosing pin guard;
            // EBR defers reclamation of epoch-reachable nodes until unpin.
            let node = unsafe { node_s.deref() };
            let next_snapshot = node.next.load(Ordering::Acquire, guard);
            let head_s = node.head.load(Ordering::Acquire, guard);
            // Overlap the head revision's miss with the validation below
            // (it is dereferenced only after the terminated check).
            prefetch_read(head_s.as_raw());
            if node.is_terminated() {
                continue;
            }
            // SAFETY: non-null and reached under the enclosing pin guard;
            // EBR defers reclamation of epoch-reachable nodes until unpin.
            let head = unsafe { head_s.deref() };
            if head.is_merge_terminator() {
                // Ownership hint: the merge owner publishes progress by
                // installing the merge revision on the terminator. Give
                // it a bounded grace period before piling onto the same
                // CASes (see `backoff`).
                let installed = head
                    .as_terminator()
                    .map(|t| !t.merge_rev.load(Ordering::Acquire, guard).is_null())
                    .unwrap_or(false);
                if backoff.should_wait(head_s.as_raw() as usize, installed as usize) {
                    perf_count!(backoff_waits);
                    continue;
                }
                self.help_merge_terminator(node_s, head_s, guard);
                continue;
            }
            if node.next.load(Ordering::Acquire, guard) != next_snapshot {
                continue;
            }
            // SAFETY: if non-null, the pointee is kept alive by the
            // enclosing pin guard (EBR).
            if let Some(succ) = unsafe { next_snapshot.as_ref() } {
                if succ.key.le(key) {
                    // Stale floor: a split moved the key's range to a
                    // new right node after the traversal read `next`;
                    // reading here would return the left half's (old)
                    // view of the key (Algorithm 2's `key < next.key`
                    // re-check).
                    continue;
                }
            }
            return (node_s, head_s);
        }
    }

    /// The flat fast path shared by `get` and `get_at`: answer from the
    /// located node's head revision iff it is finalized, regular, within
    /// the snapshot bound (`max_version`), and still covers `key`.
    /// `None` means "unusual neighbourhood — take the generic path";
    /// `Some(answer)` is the lookup result.
    #[inline]
    fn get_fast(&self, key: &K, max_version: Option<i64>, guard: &Guard) -> Option<Option<V>> {
        perf_count!(fastpath_attempts);
        let node_s = self.find_node_for_key(key, guard);
        // SAFETY: non-null and reached under the enclosing pin guard;
        // EBR defers reclamation of epoch-reachable nodes until unpin.
        let node = unsafe { node_s.deref() };
        let next_snapshot = node.next.load(Ordering::Acquire, guard);
        let head_s = node.head.load(Ordering::Acquire, guard);
        if head_s.is_null() {
            return None;
        }
        // SAFETY: non-null and reached under the enclosing pin guard;
        // EBR defers reclamation of epoch-reachable nodes until unpin.
        let head = unsafe { head_s.deref() };
        if !matches!(head.kind, RevKind::Regular) || node.is_terminated() {
            return None;
        }
        let v = head.version();
        if v < 0 || max_version.is_some_and(|s| v > s) {
            return None;
        }
        // The same `next`-bracketing the generic locate loop performs —
        // unchanged across the head read, and covering the key — just
        // without its retry: any wobble bails to the slow path.
        if node.next.load(Ordering::Acquire, guard) != next_snapshot {
            return None;
        }
        // SAFETY: if non-null, the pointee is kept alive by the
        // enclosing pin guard (EBR).
        if let Some(succ) = unsafe { next_snapshot.as_ref() } {
            if succ.key.le(key) {
                return None;
            }
        }
        perf_count!(fastpath_hits);
        self.note_read(head_s, guard);
        Some(head.data.get(key).cloned())
    }

    /// Get the most recent value for `key` (`get`, Algorithm 2 lines 1-2,
    /// 25-34).
    ///
    /// Unlike snapshot reads, `get` holds no registered snapshot, so the
    /// revision GC floor is not bounded by this reader: a revision this
    /// walk observed as *pending* (and therefore skipped) can finalize
    /// and become the GC keep point mid-walk, with everything behind it
    /// cut — the skip then runs off the severed chain. Running off the
    /// end is exactly that signature (a revision list always ends at the
    /// never-collected initial revision otherwise), so the walk restarts
    /// from a fresh head, which by then is (or sits above) a finalized
    /// revision. Snapshot readers don't need this: their registered
    /// version bounds the floor, so the keep point is never skippable
    /// for them.
    pub(crate) fn get(&self, key: &K) -> Option<V> {
        let guard = &epoch::pin();
        if fast_path_enabled() {
            if let Some(answer) = self.get_fast(key, None, guard) {
                return answer;
            }
        }
        'restart: loop {
            let (_, head_s) = self.locate_for_read(key, guard);
            self.note_read(head_s, guard);
            let mut rev_s = head_s;
            loop {
                if rev_s.is_null() {
                    continue 'restart;
                }
                // SAFETY: non-null and reached under the enclosing pin guard;
                // EBR defers reclamation of epoch-reachable nodes until unpin.
                let rev = unsafe { rev_s.deref() };
                perf_count!(revisions_walked);
                if rev.version() >= 0 {
                    return rev.data.get(key).cloned();
                }
                // Pending: skip, choosing the branch that covers the key.
                rev_s = match rev.as_merge() {
                    Some(mi) if mi.right_key <= *key => {
                        mi.right_next.load(Ordering::Acquire, guard)
                    }
                    _ => rev.next.load(Ordering::Acquire, guard),
                };
                prefetch_read(rev_s.as_raw());
            }
        }
    }

    /// Get the value for `key` as of snapshot version `snap`
    /// (`get(key, snapVersion)`, Algorithm 2 lines 3-24, 35-52).
    pub(crate) fn get_at(&self, key: &K, snap: i64) -> Option<V> {
        debug_assert!(snap >= 0);
        let guard = &epoch::pin();
        if fast_path_enabled() {
            if let Some(answer) = self.get_fast(key, Some(snap), guard) {
                return answer;
            }
        }
        let (node_s, head_s) = self.locate_for_read(key, guard);
        self.note_read(head_s, guard);
        let mut rev_s = head_s;
        loop {
            if rev_s.is_null() {
                return None;
            }
            // SAFETY: non-null and reached under the enclosing pin guard;
            // EBR defers reclamation of epoch-reachable nodes until unpin.
            let rev = unsafe { rev_s.deref() };
            perf_count!(revisions_walked);
            let mut v = rev.version();
            if v < 0 && -v <= snap {
                // The update is concurrent but may linearize before the
                // snapshot: help it and re-read (only heads can be
                // pending, so `node_s` is the right helping context).
                self.help_pending_update(node_s, rev_s, guard);
                v = rev.version();
            }
            if v >= 0 && v <= snap {
                return rev.data.get(key).cloned();
            }
            // |v| > snap: skip.
            rev_s = match rev.as_merge() {
                Some(mi) if mi.right_key <= *key => mi.right_next.load(Ordering::Acquire, guard),
                _ => rev.next.load(Ordering::Acquire, guard),
            };
            prefetch_read(rev_s.as_raw());
        }
    }

    /// Fold read-side autoscaler statistics into the head revision once
    /// every `reads_per_stats_update` reads (§3.3.6). The weight is the
    /// node's read gap, so the EMAs track per-node time shares.
    pub(crate) fn note_read<'g>(&self, head_s: Shared<'g, Revision<K, V>>, _guard: &'g Guard) {
        if self.read_fold_due() {
            // SAFETY: non-null and reached under the enclosing pin guard;
            // EBR defers reclamation of epoch-reachable nodes until unpin.
            let head = unsafe { head_s.deref() };
            let now = self.now_secs();
            let (p, u) = fold_read(head.stats.load(), head.stats.read_gap(now));
            head.stats.store(p, u);
        }
    }
}

/// White-box tests that [`JiffyInner::get_fast`] bails (returns `None`)
/// in every "unusual neighbourhood" it promises to leave to the generic
/// path — pending heads, split/merge revision heads, terminated nodes,
/// snapshot bounds — and still answers in steady state.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JiffyConfig, JiffyMap};
    use index_api::{Batch, BatchOp, BatchResolver, TwoPhaseBatch};
    use std::sync::Arc;

    #[test]
    fn fast_path_answers_in_steady_state() {
        let map: JiffyMap<u64, u64> = JiffyMap::new();
        map.put(10, 1);
        let guard = &epoch::pin();
        assert_eq!(map.inner.get_fast(&10, None, guard), Some(Some(1)));
        assert_eq!(map.inner.get_fast(&11, None, guard), Some(None), "covered miss is a hit");
    }

    #[test]
    fn fast_path_bails_on_pending_head() {
        let map: JiffyMap<u64, u64> = JiffyMap::new();
        map.put(10, 1);
        // Stage + install (but do not commit) a two-phase sub-batch: the
        // node's head is now a pending revision. The fast path must bail
        // without helping; the generic path skips the pending head and
        // answers from the prior finalized revision.
        let ticket = map.pending_version();
        let resolver: BatchResolver = Arc::new(|| {});
        let prep = map.prepare_batch(Batch::new(vec![BatchOp::Put(10, 2)]), &ticket, resolver);
        map.install_prepared(prep.as_ref());
        {
            let guard = &epoch::pin();
            assert_eq!(map.inner.get_fast(&10, None, guard), None, "pending head must bail");
        }
        assert_eq!(map.get(&10), Some(1), "generic path skips the pending head");
        // Committed: the head finalizes and the fast path engages again.
        map.commit_pending(ticket.as_ref());
        let guard = &epoch::pin();
        assert_eq!(map.inner.get_fast(&10, None, guard), Some(Some(2)));
    }

    #[test]
    fn fast_path_bails_on_snapshot_bound() {
        let map: JiffyMap<u64, u64> = JiffyMap::new();
        map.put(10, 1);
        let guard = &epoch::pin();
        // The head's version is some positive clock draw; a snapshot
        // bound below it must bail to the generic revision walk.
        assert_eq!(map.inner.get_fast(&10, Some(0), guard), None);
    }

    #[test]
    fn fast_path_bails_on_terminated_node() {
        let map: JiffyMap<u64, u64> = JiffyMap::new();
        map.put(5, 1);
        let guard = &epoch::pin();
        let node_s = map.inner.find_node_for_key(&5, guard);
        // Forcibly mark the node terminated (as a concurrent merge
        // would, transiently). Only the fast path is exercised after
        // this — the map's invariants are deliberately broken.
        // SAFETY: non-null and reached under the enclosing pin guard;
        // EBR defers reclamation of epoch-reachable nodes until unpin.
        unsafe { node_s.deref() }.terminated.store(true, Ordering::Release);
        assert_eq!(map.inner.get_fast(&5, None, guard), None, "terminated node must bail");
    }

    /// Split and merge revisions sit at node heads right after the
    /// structure change that installed them (finalized, but not
    /// `Regular`): churn a tiny-revision map single-threaded, probing
    /// the heads after every op — each non-`Regular` head must bail the
    /// fast path while the public `get` still answers from the model.
    #[test]
    fn fast_path_bails_on_split_and_merge_revision_heads() {
        let map: JiffyMap<u64, u64> = JiffyMap::with_config(JiffyConfig {
            min_revision_size: 2,
            max_revision_size: 8,
            fixed_revision_size: Some(4),
            ..Default::default()
        });
        let mut model = std::collections::BTreeMap::new();
        let mut split_seen = false;
        let mut merge_seen = false;
        // Probe every non-Regular head currently in the list; returns
        // the kinds seen. Single-threaded, so heads are stable here.
        let probe_heads = |map: &JiffyMap<u64, u64>,
                           model: &std::collections::BTreeMap<u64, u64>,
                           split_seen: &mut bool,
                           merge_seen: &mut bool| {
            let guard = &epoch::pin();
            let mut node_s = map.inner.base_node(guard);
            while !node_s.is_null() {
                // SAFETY: non-null and reached under the enclosing pin guard;
                // EBR defers reclamation of epoch-reachable nodes until unpin.
                let node = unsafe { node_s.deref() };
                let next = node.next.load(Ordering::Acquire, guard);
                if !node.is_terminated() && !node.is_temp_split() {
                    let head_s = node.head.load(Ordering::Acquire, guard);
                    // SAFETY: if non-null, the pointee is kept alive by the
                    // enclosing pin guard (EBR).
                    if let Some(head) = unsafe { head_s.as_ref() } {
                        let kind = match head.kind {
                            RevKind::Regular => None,
                            RevKind::LeftSplit(_) => Some("LeftSplit"),
                            RevKind::RightSplit(_) => Some("RightSplit"),
                            RevKind::Merge(_) => Some("Merge"),
                            RevKind::MergeTerminator(_) => Some("MergeTerminator"),
                        };
                        if let Some(kind) = kind {
                            match kind {
                                "Merge" => *merge_seen = true,
                                "LeftSplit" | "RightSplit" => *split_seen = true,
                                _ => {}
                            }
                            let probe = match &node.key {
                                crate::node::NodeKey::Key(k) => *k,
                                crate::node::NodeKey::NegInf => 0,
                            };
                            assert_eq!(
                                map.inner.get_fast(&probe, None, guard),
                                None,
                                "head kind {kind} must bail"
                            );
                            assert_eq!(
                                map.get(&probe),
                                model.get(&probe).copied(),
                                "generic path answers under a {kind} head"
                            );
                        }
                    }
                }
                node_s = next;
            }
        };
        for k in 0..400u64 {
            map.put(k, k + 1);
            model.insert(k, k + 1);
            probe_heads(&map, &model, &mut split_seen, &mut merge_seen);
        }
        for k in 0..400u64 {
            if k % 5 != 0 {
                map.remove(&k);
                model.remove(&k);
                probe_heads(&map, &model, &mut split_seen, &mut merge_seen);
            }
        }
        assert!(split_seen, "the put churn must surface a split revision at a head");
        assert!(merge_seen, "the remove churn must surface a merge revision at a head");
    }
}
