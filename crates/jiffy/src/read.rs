//! Lookup operations (paper Algorithm 2).
//!
//! `get` (newest) walks the revision list for the first *finalized*
//! revision; `get_at` (snapshot) applies the §3.2 rules:
//!
//! * `|v| > s` — skip the revision (its final version will exceed `s`);
//! * `v >= 0 && v <= s` — this is the revision to read;
//! * `v < 0 && -v <= s` — help complete the update, then re-evaluate.
//!
//! Skipping a merge revision descends into the branch that covers the
//! key (`key >= right_key` → right branch), which keeps the merged
//! node's history reachable even before/without the merge being visible.

use std::sync::atomic::Ordering;

use crossbeam_epoch::{self as epoch, Guard, Shared};
use jiffy_clock::VersionClock;

use crate::autoscale::fold_read;
use crate::inner::{JiffyInner, MapKey, MapValue};
use crate::node::{Node, Revision};

/// A node plus its head revision, as located for a read.
pub(crate) type NodeAndHead<'g, K, V> = (Shared<'g, Node<K, V>>, Shared<'g, Revision<K, V>>);

impl<K: MapKey, V: MapValue, C: VersionClock> JiffyInner<K, V, C> {
    /// Locate the node for a read: helps structure modifications (temp
    /// split nodes inside the traversal, merge terminators here) but not
    /// regular pending updates, per Algorithm 2.
    pub(crate) fn locate_for_read<'g>(&self, key: &K, guard: &'g Guard) -> NodeAndHead<'g, K, V> {
        loop {
            let node_s = self.find_node_for_key(key, guard);
            let node = unsafe { node_s.deref() };
            let next_snapshot = node.next.load(Ordering::Acquire, guard);
            let head_s = node.head.load(Ordering::Acquire, guard);
            if node.is_terminated() {
                continue;
            }
            let head = unsafe { head_s.deref() };
            if head.is_merge_terminator() {
                self.help_merge_terminator(node_s, head_s, guard);
                continue;
            }
            if node.next.load(Ordering::Acquire, guard) != next_snapshot {
                continue;
            }
            if let Some(succ) = unsafe { next_snapshot.as_ref() } {
                if succ.key.le(key) {
                    // Stale floor: a split moved the key's range to a
                    // new right node after the traversal read `next`;
                    // reading here would return the left half's (old)
                    // view of the key (Algorithm 2's `key < next.key`
                    // re-check).
                    continue;
                }
            }
            return (node_s, head_s);
        }
    }

    /// Get the most recent value for `key` (`get`, Algorithm 2 lines 1-2,
    /// 25-34).
    ///
    /// Unlike snapshot reads, `get` holds no registered snapshot, so the
    /// revision GC floor is not bounded by this reader: a revision this
    /// walk observed as *pending* (and therefore skipped) can finalize
    /// and become the GC keep point mid-walk, with everything behind it
    /// cut — the skip then runs off the severed chain. Running off the
    /// end is exactly that signature (a revision list always ends at the
    /// never-collected initial revision otherwise), so the walk restarts
    /// from a fresh head, which by then is (or sits above) a finalized
    /// revision. Snapshot readers don't need this: their registered
    /// version bounds the floor, so the keep point is never skippable
    /// for them.
    pub(crate) fn get(&self, key: &K) -> Option<V> {
        let guard = &epoch::pin();
        'restart: loop {
            let (_, head_s) = self.locate_for_read(key, guard);
            self.note_read(head_s, guard);
            let mut rev_s = head_s;
            loop {
                if rev_s.is_null() {
                    continue 'restart;
                }
                let rev = unsafe { rev_s.deref() };
                if rev.version() >= 0 {
                    return rev.data.get(key).cloned();
                }
                // Pending: skip, choosing the branch that covers the key.
                rev_s = match rev.as_merge() {
                    Some(mi) if mi.right_key <= *key => {
                        mi.right_next.load(Ordering::Acquire, guard)
                    }
                    _ => rev.next.load(Ordering::Acquire, guard),
                };
            }
        }
    }

    /// Get the value for `key` as of snapshot version `snap`
    /// (`get(key, snapVersion)`, Algorithm 2 lines 3-24, 35-52).
    pub(crate) fn get_at(&self, key: &K, snap: i64) -> Option<V> {
        debug_assert!(snap >= 0);
        let guard = &epoch::pin();
        let (node_s, head_s) = self.locate_for_read(key, guard);
        self.note_read(head_s, guard);
        let mut rev_s = head_s;
        loop {
            if rev_s.is_null() {
                return None;
            }
            let rev = unsafe { rev_s.deref() };
            let mut v = rev.version();
            if v < 0 && -v <= snap {
                // The update is concurrent but may linearize before the
                // snapshot: help it and re-read (only heads can be
                // pending, so `node_s` is the right helping context).
                self.help_pending_update(node_s, rev_s, guard);
                v = rev.version();
            }
            if v >= 0 && v <= snap {
                return rev.data.get(key).cloned();
            }
            // |v| > snap: skip.
            rev_s = match rev.as_merge() {
                Some(mi) if mi.right_key <= *key => mi.right_next.load(Ordering::Acquire, guard),
                _ => rev.next.load(Ordering::Acquire, guard),
            };
        }
    }

    /// Fold read-side autoscaler statistics into the head revision once
    /// every `reads_per_stats_update` reads (§3.3.6). The weight is the
    /// node's read gap, so the EMAs track per-node time shares.
    pub(crate) fn note_read<'g>(&self, head_s: Shared<'g, Revision<K, V>>, _guard: &'g Guard) {
        if self.read_fold_due() {
            let head = unsafe { head_s.deref() };
            let now = self.now_secs();
            let (p, u) = fold_read(head.stats.load(), head.stats.read_gap(now));
            head.stats.store(p, u);
        }
    }
}
