//! Jiffy's inner garbage collector (paper §3.3.4, Fig. 2d).
//!
//! After an update, the revision list is "cut short": walking from the
//! head, the first finalized revision whose version is at or below the
//! minimum registered snapshot version (the *keep point*) is the oldest
//! revision any current or future reader can select — everything behind
//! it is unreachable garbage.
//!
//! The cut itself is a CAS of the keep point's `next` edge to null; the
//! winner walks the severed chain and defers destruction of each revision
//! (following owning edges only — see `node.rs` for the ownership
//! discipline that makes branched lists reclaimable exactly once).
//! Readers pinned before the cut are protected by the epoch; readers
//! arriving after can never walk past the keep point, because the first
//! finalized revision `<= their snapshot` lies at or above it.

use std::sync::atomic::Ordering;

use crossbeam_epoch::{Guard, Shared};
use jiffy_clock::VersionClock;

use crate::inner::{defer_destroy_chain, JiffyInner, MapKey, MapValue};
use crate::node::Node;

impl<K: MapKey, V: MapValue, C: VersionClock> JiffyInner<K, V, C> {
    /// Truncate obsolete revisions at `node_s` (Algorithm 1 line 34).
    pub(crate) fn perform_gc<'g>(&self, node_s: Shared<'g, Node<K, V>>, guard: &'g Guard) {
        let mut min = self.gc_floor();
        // SAFETY: non-null and reached under the enclosing pin guard;
        // EBR defers reclamation of epoch-reachable nodes until unpin.
        let node = unsafe { node_s.deref() };
        let mut rev_s = node.head.load(Ordering::Acquire, guard);
        // Find the keep point: first finalized revision with version <= min.
        let mut depth = 0usize;
        let mut refreshed = false;
        let keep = loop {
            if rev_s.is_null() {
                return; // nothing old enough to cut
            }
            // SAFETY: non-null and reached under the enclosing pin guard;
            // EBR defers reclamation of epoch-reachable nodes until unpin.
            let rev = unsafe { rev_s.deref() };
            let v = rev.version();
            if v >= 0 && v <= min {
                break rev;
            }
            // A long walk means the cached floor lags far behind this
            // node's update rate (hot-node append patterns): pay for one
            // registry scan to pull the floor forward and re-evaluate.
            depth += 1;
            if depth > 8 && !refreshed {
                refreshed = true;
                let fresh = self.snapshots.min_version(&self.clock);
                let prev = self.cached_min.fetch_max(fresh, Ordering::AcqRel);
                if fresh > prev {
                    jiffy_obs::trace_event!(GcFloorAdvance, fresh, prev as u64, fresh as u64);
                }
                min = self.gc_floor();
                if v >= 0 && v <= min {
                    break rev;
                }
            }
            // Walk the spine only; branches hang off their merge revision
            // and are reclaimed when it is.
            rev_s = rev.next.load(Ordering::Acquire, guard);
        };
        // Cut the spine behind the keep point. The swap atomically
        // *claims* the severed chain: exactly one cutter sees the
        // non-null tail, and the chain walker claims every further edge
        // the same way (see `defer_destroy_chain` on why).
        let tail = keep.next.swap(Shared::null(), Ordering::AcqRel, guard);
        if !tail.is_null() && keep.owns_next() {
            // SAFETY: unlinked from the structure above, so no new reader
            // can reach it; already-pinned readers hold it until they unpin.
            unsafe { defer_destroy_chain(tail, guard) };
        }
        // A merge revision at the keep point also owns its right branch;
        // once it is itself at/below the floor, no reader will descend.
        if let Some(mi) = keep.as_merge() {
            let rtail = mi.right_next.swap(Shared::null(), Ordering::AcqRel, guard);
            if !rtail.is_null() {
                // SAFETY: unlinked from the structure above, so no new reader
                // can reach it; already-pinned readers hold it until they unpin.
                unsafe { defer_destroy_chain(rtail, guard) };
            }
        }
    }
}
