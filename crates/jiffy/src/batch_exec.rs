//! Batch update execution (paper §3.3.3).
//!
//! A batch proceeds strictly from the highest key towards the lowest
//! (rule 3 of §3.1). For each *group* — the maximal run of remaining ops
//! that fall into one node's key range — the executor installs a single
//! revision reflecting all of them (item 2), then advances the
//! descriptor's `progress` with a CAS. Any thread that encounters one of
//! the batch's pending revisions helps by re-entering this loop (item 4);
//! the final version is attempted only once every op is installed.
//!
//! Invariants making helping safe:
//!
//! * a node hosting one of the batch's pending revisions is *frozen*: no
//!   revision can stack on a pending head (rule 2), so neither splits nor
//!   merges can move its boundaries until the batch completes;
//! * therefore, if a helper finds the batch's own pending revision at the
//!   node covering the current key, that group is already installed and
//!   the helper only needs to advance `progress`;
//! * removes of absent keys still produce a revision (item 5) — skipping
//!   them could lose a remove against a concurrent batch that finishes
//!   with a lower final version.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crossbeam_epoch::{self as epoch, Owned};
use jiffy_clock::VersionClock;

use crate::autoscale::{self, UpdateKind};
use crate::batch::BatchDescriptor;
use crate::inner::{JiffyInner, MapKey, MapValue};
use crate::node::{NodeKey, RevKind, RevStats, Revision, TermInfo, TermOp};
use crate::version::{finalize_cell, VersionRef};

impl<K: MapKey, V: MapValue, C: VersionClock> JiffyInner<K, V, C> {
    /// Execute a batch update atomically. Returns once the batch's final
    /// version is published (its linearization point).
    pub(crate) fn batch_update(&self, ops_ascending: Vec<index_api::BatchOp<K, V>>) {
        if ops_ascending.is_empty() {
            return;
        }
        let desc = Arc::new(BatchDescriptor::new(&self.clock, ops_ascending));
        self.help_batch(&desc);
        self.bump_update_tick();
    }

    /// Help `desc` to *full* completion: local installation plus — for a
    /// two-phase sub-batch — the sibling sub-batches on the other
    /// participating indices and the shared commit, via the resolver. On
    /// return the descriptor's version is final, which is what every
    /// pending-head encounter needs to make progress.
    pub(crate) fn help_batch_fully(&self, desc: &Arc<BatchDescriptor<K, V>>) {
        if desc.is_two_phase() && !desc.is_finalized() {
            // A helper (not the initiator) is about to resolve someone
            // else's cross-index batch — the §3.3.3 progress property
            // in action, and the first thing to look for in a trace of
            // a stuck two-phase commit.
            jiffy_obs::trace_event!(
                TwoPhaseHelp,
                desc.version_cell().load().unsigned_abs(),
                Arc::as_ptr(desc) as usize
            );
        }
        self.help_batch(desc);
        desc.resolve_external();
    }

    /// Drive `desc` to completion from wherever it currently stands.
    /// Callable by the initiating thread and by any helper.
    ///
    /// Pins the epoch *per group iteration*, not per batch: a batch
    /// spanning hundreds of nodes defers hundreds of replaced revisions,
    /// and a single long pin would stall epoch advancement and let the
    /// garbage backlog grow without bound.
    pub(crate) fn help_batch(&self, desc: &Arc<BatchDescriptor<K, V>>) {
        let with_index = !self.config.disable_hash_index;
        let mut backoff = crate::backoff::HelpBackoff::new();
        #[cfg(debug_assertions)]
        let mut spins = 0u64;
        loop {
            perf_count!(help_iterations);
            #[cfg(debug_assertions)]
            {
                spins += 1;
                if spins > 30_000_000 {
                    jiffy_obs::dump_on_failure("help_batch livelock tripwire", 64);
                    panic!(
                        "help_batch livelock: progress {}/{} two_phase={} finalized={}",
                        desc.progress(),
                        desc.len(),
                        desc.is_two_phase(),
                        desc.is_finalized()
                    );
                }
            }
            if desc.is_finalized() {
                return;
            }
            let guard = &epoch::pin();
            let i = desc.progress();
            if i >= desc.len() {
                if desc.is_two_phase() {
                    // One sub-batch of a cross-index batch: the shared
                    // version belongs to the whole batch and is published
                    // by the cross-index commit (every sibling sub-batch
                    // must be installed first). Local installation is
                    // done; callers that need the version settled go
                    // through `BatchDescriptor::resolve_external`.
                    return;
                }
                // Everything installed: publish the final version.
                finalize_cell(&self.clock, desc.version_cell());
                return;
            }
            let key = desc.ops()[i].key();
            let node_s = self.find_node_for_key(key, guard);
            // SAFETY: non-null and reached under the enclosing pin guard;
            // EBR defers reclamation of epoch-reachable nodes until unpin.
            let node = unsafe { node_s.deref() };
            let next_snapshot = node.next.load(Ordering::Acquire, guard);
            let head_s = node.head.load(Ordering::Acquire, guard);
            if node.is_terminated() {
                continue;
            }
            // SAFETY: non-null and reached under the enclosing pin guard;
            // EBR defers reclamation of epoch-reachable nodes until unpin.
            let head = unsafe { head_s.deref() };
            if head.is_merge_terminator() {
                let theirs = head.batch_descriptor().map(|d| !Arc::ptr_eq(d, desc)).unwrap_or(true);
                if theirs {
                    // Another operation's merge: its owner publishes
                    // progress by installing the merge revision. Wait it
                    // out briefly before joining the CAS storm.
                    let installed = head
                        .as_terminator()
                        .map(|t| !t.merge_rev.load(Ordering::Acquire, guard).is_null())
                        .unwrap_or(false);
                    if backoff.should_wait(head_s.as_raw() as usize, installed as usize) {
                        perf_count!(backoff_waits);
                        continue;
                    }
                }
                self.help_merge_terminator(node_s, head_s, guard);
                continue;
            }
            if head.is_pending() {
                let ours = head.batch_descriptor().map(|d| Arc::ptr_eq(d, desc)).unwrap_or(false);
                if ours {
                    // This group is already installed here. Finish any
                    // structure change it drove, then advance progress.
                    match &head.kind {
                        RevKind::LeftSplit(_) => self.help_split(node_s, head_s, guard),
                        RevKind::Merge(_) => self.complete_merge(head_s, guard),
                        _ => {}
                    }
                    let (start, end) = head.batch_span;
                    debug_assert!(start <= i && i < end.max(start + 1));
                    if end > i {
                        let _ = desc.advance(i, end);
                    }
                    continue;
                }
                // A *different* batch (or single update) owns this node.
                // Its installing thread publishes progress through the
                // descriptor's `progress` counter; spin-wait on that
                // hint before duplicating its group installations — the
                // §3.3.3 all-shard contention regression is exactly N
                // helpers re-doing the same work. Bounded: a genuinely
                // stalled owner is still helped (lock-freedom).
                let hint = match head.batch_descriptor() {
                    Some(d) => d.progress().wrapping_add(1),
                    None => 0,
                };
                if backoff.should_wait(head_s.as_raw() as usize, hint) {
                    perf_count!(backoff_waits);
                    continue;
                }
                self.help_pending_update(node_s, head_s, guard);
                continue;
            }
            if node.next.load(Ordering::Acquire, guard) != next_snapshot {
                continue;
            }
            // SAFETY: if non-null, the pointee is kept alive by the
            // enclosing pin guard (EBR).
            if let Some(succ) = unsafe { next_snapshot.as_ref() } {
                if succ.key.le(key) {
                    // Stale floor: a split moved this op's key to a new
                    // right node after the traversal read `next`;
                    // installing the group here would plant ops beyond
                    // the node's boundary (the same `key < next.key`
                    // re-check as the single-key paths).
                    continue;
                }
            }

            // Install this group.
            let j = desc.group_end(i, &node.key);
            debug_assert!(j > i, "the located node must cover the current key");
            let deltas = desc.group_deltas(i, j);
            let new_data = head.data.apply_deltas(&deltas, with_index);
            let len_after = new_data.len();
            let now = self.now_secs();
            let stats = autoscale::fold_update(head.stats.load(), head.stats.update_gap(now));
            let can_merge = node.key != NodeKey::NegInf;
            let kind = autoscale::decide(&self.config, &head.stats, len_after, can_merge);
            let len_delta = len_after as isize - head.data.len() as isize;
            match kind {
                UpdateKind::Split if len_after >= 2 => {
                    match self.install_split(
                        node_s,
                        head_s,
                        new_data,
                        0, // version comes from the descriptor
                        Some(desc.clone()),
                        (i, j),
                        stats,
                        now,
                        guard,
                    ) {
                        Some(lsr_s) => {
                            self.add_len(len_delta);
                            self.help_split(node_s, lsr_s, guard);
                            let _ = desc.advance(i, j);
                            self.perform_gc(node_s, guard);
                        }
                        None => continue,
                    }
                }
                UpdateKind::Merge => {
                    let mterm = Owned::new(Revision {
                        vref: VersionRef::Batch(desc.clone()),
                        data: crate::revision::RevData::empty(),
                        next: crossbeam_epoch::Atomic::null(),
                        kind: RevKind::MergeTerminator(TermInfo {
                            op: TermOp::Batch { group_start: i, _marker: std::marker::PhantomData },
                            merge_rev: crossbeam_epoch::Atomic::null(),
                            cleanup_claimed: AtomicBool::new(false),
                        }),
                        stats: RevStats::new(stats.0, stats.1, now),
                        batch_span: (i, i),
                    });
                    mterm.next.store(head_s, Ordering::Relaxed);
                    match node.head.compare_exchange(
                        head_s,
                        mterm,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        guard,
                    ) {
                        Ok(mterm_s) => {
                            // The merge folds in the predecessor's group
                            // and advances progress itself.
                            let _ = self.help_merge_terminator(node_s, mterm_s, guard);
                        }
                        Err(e) => drop(e.new),
                    }
                }
                _ => {
                    let rev = Owned::new(Revision {
                        vref: VersionRef::Batch(desc.clone()),
                        data: new_data,
                        next: crossbeam_epoch::Atomic::null(),
                        kind: RevKind::Regular,
                        stats: RevStats::new(stats.0, stats.1, now),
                        batch_span: (i, j),
                    });
                    rev.next.store(head_s, Ordering::Relaxed);
                    match node.head.compare_exchange(
                        head_s,
                        rev,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        guard,
                    ) {
                        Ok(_) => {
                            self.add_len(len_delta);
                            let _ = desc.advance(i, j);
                            self.perform_gc(node_s, guard);
                        }
                        Err(e) => drop(e.new),
                    }
                }
            }
        }
    }
}
