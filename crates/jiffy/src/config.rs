//! Tuning knobs for a [`JiffyMap`](crate::JiffyMap).

/// Configuration of a Jiffy index.
///
/// The defaults correspond to the paper's settings: revision sizes bounded
/// to `[25, 300]` entries (§3.3.6), adaptive sizing on, and reader-side
/// autoscaler statistics refreshed every 100 reads.
#[derive(Clone, Debug)]
pub struct JiffyConfig {
    /// Smallest revision size the autoscaler will target (paper: 25).
    pub min_revision_size: usize,
    /// Largest revision size the autoscaler will target (paper: 300).
    pub max_revision_size: usize,
    /// If `Some(n)`, disable the adaptive policy and target a fixed
    /// revision size of `n` entries (used by the `revsize` ablation).
    pub fixed_revision_size: Option<usize>,
    /// A node splits when its head revision holds at least
    /// `split_factor × target` entries. Must be > 1.
    pub split_factor: f64,
    /// A node merges (into its predecessor) when its head revision holds
    /// at most `target × merge_factor` entries. Must be < 1.
    pub merge_factor: f64,
    /// Hard upper bound on entries per revision regardless of the policy
    /// (the 2-byte in-revision hash index limits revisions to 65 535
    /// entries, §3.3.5; we split well before that).
    pub hard_max_revision_size: usize,
    /// Reader threads fold their statistics into the head revision only
    /// every this many read operations (paper: 100, §3.3.6).
    pub reads_per_stats_update: u32,
    /// Recompute the cached minimum snapshot version after this many
    /// update operations ("Jiffy's inner garbage collector periodically
    /// scans the list", §3.3.4).
    pub updates_per_min_scan: u32,
    /// Disable the per-revision hash index and always binary-search
    /// (used by the `hash` ablation, §3.3.5).
    pub disable_hash_index: bool,
}

impl Default for JiffyConfig {
    fn default() -> Self {
        JiffyConfig {
            min_revision_size: 25,
            max_revision_size: 300,
            fixed_revision_size: None,
            split_factor: 2.0,
            merge_factor: 0.33,
            hard_max_revision_size: 4096,
            reads_per_stats_update: 100,
            updates_per_min_scan: 128,
            disable_hash_index: false,
        }
    }
}

impl JiffyConfig {
    /// Configuration with a fixed revision size (adaptive policy off).
    pub fn fixed(size: usize) -> Self {
        JiffyConfig { fixed_revision_size: Some(size.max(2)), ..Default::default() }
    }

    /// Validate invariants; panics on nonsense configurations.
    pub(crate) fn validate(&self) {
        assert!(self.min_revision_size >= 2, "min_revision_size must be >= 2");
        assert!(
            self.max_revision_size >= self.min_revision_size,
            "max_revision_size must be >= min_revision_size"
        );
        assert!(self.split_factor > 1.0, "split_factor must be > 1");
        assert!(
            self.merge_factor > 0.0 && self.merge_factor < 1.0,
            "merge_factor must be in (0, 1)"
        );
        assert!(
            self.hard_max_revision_size <= u16::MAX as usize,
            "hard_max_revision_size must fit the 2-byte hash index"
        );
        if let Some(n) = self.fixed_revision_size {
            assert!(n >= 2, "fixed_revision_size must be >= 2");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        JiffyConfig::default().validate();
    }

    #[test]
    fn fixed_is_valid() {
        let c = JiffyConfig::fixed(64);
        c.validate();
        assert_eq!(c.fixed_revision_size, Some(64));
    }

    #[test]
    fn fixed_clamps_tiny_sizes() {
        assert_eq!(JiffyConfig::fixed(0).fixed_revision_size, Some(2));
    }

    #[test]
    #[should_panic]
    fn bad_split_factor_panics() {
        JiffyConfig { split_factor: 0.5, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic]
    fn bad_merge_factor_panics() {
        JiffyConfig { merge_factor: 1.5, ..Default::default() }.validate();
    }
}
