//! Per-thread op-cost counters (feature `perf-counters`).
//!
//! The cache-conscious hot-path work (descent prefetching, the flat
//! point-get fast path, helping backoff) is mostly invisible to
//! wall-clock benchmarks on 1-core hardware: a prefetch that hides a
//! miss the core would have stalled on anyway buys nothing when there
//! is no memory-level parallelism to exploit. These counters measure
//! the *structural* cost of each operation instead — pointer hops,
//! chain lengths, retries, duplicated helping — quantities that
//! multicore hardware cashes in directly.
//!
//! Counting is thread-local (a plain `Cell`, no atomics, no sharing),
//! so the measurement layer cannot perturb the contention behaviour it
//! observes. Harnesses call [`take`] on each worker thread at the
//! recording-window boundaries and aggregate the deltas themselves.
//! The whole module compiles away when the feature is off: call sites
//! go through the crate-internal `perf_count!` macro, which expands to
//! nothing without `perf-counters`.

use std::cell::Cell;

/// Cumulative op-cost counters for one thread.
///
/// All fields are event totals since the last [`take`]; derive rates
/// (e.g. nodes visited *per descent*) by also counting the base events
/// in the harness, or use the companion fields here
/// (`descents` / `fastpath_attempts`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCostCounters {
    /// Level-0/tower descents started (one per `find_node_for_key`).
    pub descents: u64,
    /// Skip-list nodes stepped through during descents (tower hops +
    /// level-0 hops).
    pub nodes_visited: u64,
    /// Revisions inspected while walking revision lists in `get` /
    /// `get_at` / scan window resolution.
    pub revisions_walked: u64,
    /// Locate-loop restarts (stale `next`, terminated node, coverage
    /// re-check failure, merge-terminator helping detour).
    pub locate_retries: u64,
    /// Iterations of batch-helping loops (`help_batch` passes,
    /// including ones that end up duplicating another thread's work).
    pub help_iterations: u64,
    /// Bounded exponential-backoff waits taken in helping loops
    /// instead of immediately duplicating an owner's work.
    pub backoff_waits: u64,
    /// Point gets that attempted the flat fast path.
    pub fastpath_attempts: u64,
    /// Point gets fully served by the flat fast path.
    pub fastpath_hits: u64,
}

impl OpCostCounters {
    /// All-zero counters (`const` so the thread-local can be
    /// const-initialized).
    pub const ZERO: OpCostCounters = OpCostCounters {
        descents: 0,
        nodes_visited: 0,
        revisions_walked: 0,
        locate_retries: 0,
        help_iterations: 0,
        backoff_waits: 0,
        fastpath_attempts: 0,
        fastpath_hits: 0,
    };

    /// Field-wise sum (harness aggregation across worker threads).
    pub fn add(&mut self, other: &OpCostCounters) {
        self.descents += other.descents;
        self.nodes_visited += other.nodes_visited;
        self.revisions_walked += other.revisions_walked;
        self.locate_retries += other.locate_retries;
        self.help_iterations += other.help_iterations;
        self.backoff_waits += other.backoff_waits;
        self.fastpath_attempts += other.fastpath_attempts;
        self.fastpath_hits += other.fastpath_hits;
    }

    /// Fast-path hit rate in `[0, 1]`, or `None` if no gets ran.
    pub fn fastpath_hit_rate(&self) -> Option<f64> {
        if self.fastpath_attempts == 0 {
            None
        } else {
            Some(self.fastpath_hits as f64 / self.fastpath_attempts as f64)
        }
    }
}

thread_local! {
    static COUNTERS: Cell<OpCostCounters> = const { Cell::new(OpCostCounters::ZERO) };
}

/// Apply a mutation to this thread's counters (crate-internal; call
/// sites use the `perf_count!` macro so they vanish without the
/// feature).
#[inline]
pub(crate) fn bump(f: impl FnOnce(&mut OpCostCounters)) {
    COUNTERS.with(|c| {
        let mut v = c.get();
        f(&mut v);
        c.set(v);
    });
}

/// This thread's counters since the last [`take`], without resetting.
pub fn snapshot() -> OpCostCounters {
    COUNTERS.with(|c| c.get())
}

/// Return and reset this thread's counters.
pub fn take() -> OpCostCounters {
    COUNTERS.with(|c| c.replace(OpCostCounters::ZERO))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_snapshot_take_roundtrip() {
        take();
        bump(|c| c.nodes_visited += 3);
        bump(|c| {
            c.descents += 1;
            c.fastpath_attempts += 2;
            c.fastpath_hits += 1;
        });
        let s = snapshot();
        assert_eq!(s.nodes_visited, 3);
        assert_eq!(s.descents, 1);
        assert_eq!(s.fastpath_hit_rate(), Some(0.5));
        let t = take();
        assert_eq!(t, s);
        assert_eq!(snapshot(), OpCostCounters::ZERO);
    }

    #[test]
    fn add_is_fieldwise() {
        let mut a = OpCostCounters { nodes_visited: 1, help_iterations: 2, ..OpCostCounters::ZERO };
        let b = OpCostCounters { nodes_visited: 10, backoff_waits: 4, ..OpCostCounters::ZERO };
        a.add(&b);
        assert_eq!(a.nodes_visited, 11);
        assert_eq!(a.help_iterations, 2);
        assert_eq!(a.backoff_waits, 4);
    }

    #[test]
    fn hit_rate_none_without_attempts() {
        assert_eq!(OpCostCounters::ZERO.fastpath_hit_rate(), None);
    }
}
