//! Single-key update operations (paper Algorithm 1) and the generic
//! helping dispatcher.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crossbeam_epoch::{self as epoch, Guard, Owned, Shared};
use jiffy_clock::VersionClock;

use crate::autoscale::{self, UpdateKind};
use crate::inner::{JiffyInner, MapKey, MapValue};
use crate::node::{Node, NodeKey, RevKind, RevStats, Revision, SplitInfo, TermInfo, TermOp};
use crate::version::{finalize_cell, optimistic_version, VersionCell, VersionRef};

/// Result of locating the node responsible for a key, with a stable
/// (finalized, non-terminator) head and a validated successor snapshot.
pub(crate) struct Located<'g, K, V> {
    pub(crate) node: Shared<'g, Node<K, V>>,
    pub(crate) head: Shared<'g, Revision<K, V>>,
}

impl<K: MapKey, V: MapValue, C: VersionClock> JiffyInner<K, V, C> {
    /// The checks of Algorithm 1 lines 4-16: find the node for `key`, help
    /// any pending operation/structure change, and return once the head is
    /// finalized and the neighbourhood validated.
    pub(crate) fn locate_for_update<'g>(&self, key: &K, guard: &'g Guard) -> Located<'g, K, V> {
        let mut backoff = crate::backoff::HelpBackoff::new();
        #[cfg(feature = "perf-counters")]
        let mut iters = 0u64;
        #[cfg(debug_assertions)]
        let mut spins = 0u64;
        loop {
            #[cfg(feature = "perf-counters")]
            {
                iters += 1;
                if iters > 1 {
                    crate::counters::bump(|c| c.locate_retries += 1);
                }
            }
            #[cfg(debug_assertions)]
            {
                spins += 1;
                if spins > 30_000_000 {
                    jiffy_obs::dump_on_failure("locate_for_update livelock tripwire", 64);
                    panic!("locate_for_update livelock");
                }
            }
            let node_s = self.find_node_for_key(key, guard);
            // SAFETY: non-null and reached under the enclosing pin guard;
            // EBR defers reclamation of epoch-reachable nodes until unpin.
            let node = unsafe { node_s.deref() };
            let next_snapshot = node.next.load(Ordering::Acquire, guard);
            let head_s = node.head.load(Ordering::Acquire, guard);
            // Overlap the head revision's miss with the terminated check
            // (the head is dereferenced a few instructions later).
            crossbeam_utils::prefetch_read(head_s.as_raw());
            if node.is_terminated() {
                continue;
            }
            debug_assert!(!head_s.is_null(), "every node has a revision list head");
            // SAFETY: non-null and reached under the enclosing pin guard;
            // EBR defers reclamation of epoch-reachable nodes until unpin.
            let head = unsafe { head_s.deref() };
            if head.is_merge_terminator() {
                // The merge owner publishes progress by installing the
                // merge revision; give it a bounded grace period before
                // duplicating its CASes (ownership hint, see `backoff`).
                let installed = head
                    .as_terminator()
                    .map(|t| !t.merge_rev.load(Ordering::Acquire, guard).is_null())
                    .unwrap_or(false);
                if backoff.should_wait(head_s.as_raw() as usize, installed as usize) {
                    perf_count!(backoff_waits);
                    continue;
                }
                self.help_merge_terminator(node_s, head_s, guard);
                continue;
            }
            if head.is_pending() {
                // Ownership hint: a batch owner publishes `progress`; a
                // plain pending revision publishes only its finalization
                // (which empties this branch). Spin-wait on the signal
                // before helping — bounded, so a stalled owner is still
                // helped to completion (lock-freedom).
                let hint = match head.batch_descriptor() {
                    Some(d) => d.progress().wrapping_add(1),
                    None => 0,
                };
                if backoff.should_wait(head_s.as_raw() as usize, hint) {
                    perf_count!(backoff_waits);
                    continue;
                }
                self.help_pending_update(node_s, head_s, guard);
                continue;
            }
            if node.next.load(Ordering::Acquire, guard) != next_snapshot {
                continue; // a split or merge happened underneath us
            }
            // SAFETY: if non-null, the pointee is kept alive by the
            // enclosing pin guard (EBR).
            if let Some(succ) = unsafe { next_snapshot.as_ref() } {
                if succ.key.le(key) {
                    // The walk's floor view went stale: a split carved
                    // the key's range out to a new right node after the
                    // traversal read this node's `next`. Installing here
                    // would plant the key beyond the node's boundary
                    // (Algorithm 1's `key < next.key` re-check).
                    continue;
                }
            }
            return Located { node: node_s, head: head_s };
        }
    }

    /// Complete another thread's in-flight update found at the head of
    /// `node_s` (`helpPendingUpdate`). On return the revision's version is
    /// final (and any structure change it drove is complete).
    pub(crate) fn help_pending_update<'g>(
        &self,
        node_s: Shared<'g, Node<K, V>>,
        rev_s: Shared<'g, Revision<K, V>>,
        guard: &'g Guard,
    ) {
        // SAFETY: non-null and reached under the enclosing pin guard;
        // EBR defers reclamation of epoch-reachable nodes until unpin.
        let rev = unsafe { rev_s.deref() };
        match &rev.kind {
            RevKind::MergeTerminator(_) => {
                self.help_merge_terminator(node_s, rev_s, guard);
            }
            RevKind::Merge(_) => {
                self.complete_merge(rev_s, guard);
                if let Some(desc) = rev.batch_descriptor() {
                    let desc = desc.clone();
                    self.help_batch_fully(&desc);
                }
            }
            RevKind::LeftSplit(_) => {
                self.help_split(node_s, rev_s, guard);
                match rev.batch_descriptor() {
                    Some(desc) => {
                        let desc = desc.clone();
                        self.help_batch_fully(&desc);
                    }
                    None => {
                        finalize_cell(&self.clock, rev.vref.cell());
                    }
                }
            }
            RevKind::RightSplit(_) => {
                // Structure is necessarily complete (this node exists);
                // only the version remains.
                match rev.batch_descriptor() {
                    Some(desc) => {
                        let desc = desc.clone();
                        self.help_batch_fully(&desc);
                    }
                    None => {
                        finalize_cell(&self.clock, rev.vref.cell());
                    }
                }
            }
            RevKind::Regular => match rev.batch_descriptor() {
                Some(desc) => {
                    let desc = desc.clone();
                    self.help_batch_fully(&desc);
                }
                None => {
                    finalize_cell(&self.clock, rev.vref.cell());
                }
            },
        }
    }

    /// `put(key, value)`: insert or overwrite. Returns the previous value.
    pub(crate) fn put(&self, key: K, value: V) -> Option<V> {
        let guard = &epoch::pin();
        let with_index = !self.config.disable_hash_index;
        let (published_s, node_s, old);
        loop {
            let loc = self.locate_for_update(&key, guard);
            // SAFETY: non-null and reached under the enclosing pin guard;
            // EBR defers reclamation of epoch-reachable nodes until unpin.
            let node = unsafe { loc.node.deref() };
            // SAFETY: non-null and reached under the enclosing pin guard;
            // EBR defers reclamation of epoch-reachable nodes until unpin.
            let head = unsafe { loc.head.deref() };
            let prev = head.data.get(&key).cloned();
            let len_after = head.data.len() + usize::from(prev.is_none());
            let opt_ver = optimistic_version(&self.clock);
            let now = self.now_secs();
            let stats = autoscale::fold_update(head.stats.load(), head.stats.update_gap(now));
            // A put only grows the revision: it never merges (Alg. 1).
            let kind = autoscale::decide(&self.config, &head.stats, len_after, false);
            if kind == UpdateKind::Split && len_after >= 2 {
                let full = head.data.with_put(key.clone(), value.clone(), with_index);
                match self.install_split(
                    loc.node,
                    loc.head,
                    full,
                    opt_ver,
                    None,
                    (0, 0),
                    stats,
                    now,
                    guard,
                ) {
                    Some(lsr_s) => {
                        self.help_split(loc.node, lsr_s, guard);
                        if prev.is_none() {
                            self.add_len(1);
                        }
                        published_s = lsr_s;
                        node_s = loc.node;
                        old = prev;
                        break;
                    }
                    None => continue,
                }
            }
            let data = head.data.with_put(key.clone(), value.clone(), with_index);
            let rev = Owned::new(Revision {
                vref: VersionRef::Inline(VersionCell::with_value(opt_ver)),
                data,
                next: crossbeam_epoch::Atomic::null(),
                kind: RevKind::Regular,
                stats: RevStats::new(stats.0, stats.1, now),
                batch_span: (0, 0),
            });
            rev.next.store(loc.head, Ordering::Relaxed);
            match node.head.compare_exchange(
                loc.head,
                rev,
                Ordering::AcqRel,
                Ordering::Acquire,
                guard,
            ) {
                Ok(published) => {
                    if prev.is_none() {
                        self.add_len(1);
                    }
                    published_s = published;
                    node_s = loc.node;
                    old = prev;
                    break;
                }
                Err(e) => drop(e.new),
            }
        }
        // SAFETY: non-null and reached under the enclosing pin guard;
        // EBR defers reclamation of epoch-reachable nodes until unpin.
        let published = unsafe { published_s.deref() };
        finalize_cell(&self.clock, published.vref.cell());
        self.perform_gc(node_s, guard);
        self.bump_update_tick();
        old
    }

    /// `remove(key)`: delete. Returns the previous value (or `None`
    /// without touching the structure, Alg. 1 line 39).
    pub(crate) fn remove(&self, key: &K) -> Option<V> {
        let guard = &epoch::pin();
        let with_index = !self.config.disable_hash_index;
        let (gc_node_s, finalize_rev_s, old);
        loop {
            let loc = self.locate_for_update(key, guard);
            // SAFETY: non-null and reached under the enclosing pin guard;
            // EBR defers reclamation of epoch-reachable nodes until unpin.
            let node = unsafe { loc.node.deref() };
            // SAFETY: non-null and reached under the enclosing pin guard;
            // EBR defers reclamation of epoch-reachable nodes until unpin.
            let head = unsafe { loc.head.deref() };
            let prev = head.data.get(key).cloned()?;
            let len_after = head.data.len() - 1;
            let opt_ver = optimistic_version(&self.clock);
            let now = self.now_secs();
            let stats = autoscale::fold_update(head.stats.load(), head.stats.update_gap(now));
            let can_merge = node.key != NodeKey::NegInf;
            let kind = autoscale::decide(&self.config, &head.stats, len_after, can_merge);
            match kind {
                UpdateKind::Merge => {
                    let cell = Arc::new(VersionCell::with_value(opt_ver));
                    let mterm = Owned::new(Revision {
                        vref: VersionRef::Shared(cell),
                        data: crate::revision::RevData::empty(),
                        next: crossbeam_epoch::Atomic::null(),
                        kind: RevKind::MergeTerminator(TermInfo {
                            op: TermOp::Remove { key: key.clone() },
                            merge_rev: crossbeam_epoch::Atomic::null(),
                            cleanup_claimed: AtomicBool::new(false),
                        }),
                        stats: RevStats::new(stats.0, stats.1, now),
                        batch_span: (0, 0),
                    });
                    // Non-owning edge to the node's (finalized) history.
                    mterm.next.store(loc.head, Ordering::Relaxed);
                    match node.head.compare_exchange(
                        loc.head,
                        mterm,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        guard,
                    ) {
                        Ok(mterm_s) => {
                            // Entry accounting happens when the merge
                            // revision is installed (its content delta
                            // already reflects this remove).
                            let mr_s = self.help_merge_terminator(loc.node, mterm_s, guard);
                            // GC runs at the node that now hosts the data.
                            gc_node_s = self.find_node_for_key(key, guard);
                            finalize_rev_s = mr_s;
                            old = prev;
                            break;
                        }
                        Err(e) => drop(e.new),
                    }
                }
                UpdateKind::Split | UpdateKind::Regular => {
                    // (A remove can shrink below the split threshold only
                    // through races; treat Split as Regular.)
                    let data = head.data.with_remove(key, with_index);
                    let rev = Owned::new(Revision {
                        vref: VersionRef::Inline(VersionCell::with_value(opt_ver)),
                        data,
                        next: crossbeam_epoch::Atomic::null(),
                        kind: RevKind::Regular,
                        stats: RevStats::new(stats.0, stats.1, now),
                        batch_span: (0, 0),
                    });
                    rev.next.store(loc.head, Ordering::Relaxed);
                    match node.head.compare_exchange(
                        loc.head,
                        rev,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        guard,
                    ) {
                        Ok(published) => {
                            self.add_len(-1);
                            gc_node_s = loc.node;
                            finalize_rev_s = published;
                            old = prev;
                            break;
                        }
                        Err(e) => drop(e.new),
                    }
                }
            }
        }
        // SAFETY: non-null and reached under the enclosing pin guard;
        // EBR defers reclamation of epoch-reachable nodes until unpin.
        let rev = unsafe { finalize_rev_s.deref() };
        finalize_cell(&self.clock, rev.vref.cell());
        self.perform_gc(gc_node_s, guard);
        self.bump_update_tick();
        Some(old)
    }

    /// Build a split pair from `full` (the post-update entries), install
    /// the left half as `node`'s head. Returns the published left split
    /// revision, or `None` if the head CAS lost. `batch` carries the
    /// descriptor for batch-driven splits.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn install_split<'g>(
        &self,
        node_s: Shared<'g, Node<K, V>>,
        expected_head: Shared<'g, Revision<K, V>>,
        full: crate::revision::RevData<K, V>,
        opt_ver: i64,
        batch: Option<Arc<crate::batch::BatchDescriptor<K, V>>>,
        span: (usize, usize),
        stats: (f32, f32),
        now: f32,
        guard: &'g Guard,
    ) -> Option<Shared<'g, Revision<K, V>>> {
        debug_assert!(full.len() >= 2);
        let with_index = !self.config.disable_hash_index;
        // SAFETY: non-null and reached under the enclosing pin guard;
        // EBR defers reclamation of epoch-reachable nodes until unpin.
        let node = unsafe { node_s.deref() };
        let (ldata, rdata, split_key) = full.split_halves(with_index);
        let info = Arc::new(SplitInfo { split_key, right: crossbeam_epoch::Atomic::null() });
        let (lvref, rvref): (VersionRef<K, V>, VersionRef<K, V>) = match &batch {
            Some(d) => (VersionRef::Batch(d.clone()), VersionRef::Batch(d.clone())),
            None => {
                let cell = Arc::new(VersionCell::with_value(opt_ver));
                (VersionRef::Shared(cell.clone()), VersionRef::Shared(cell))
            }
        };
        let rsr = Owned::new(Revision {
            vref: rvref,
            data: rdata,
            next: crossbeam_epoch::Atomic::null(),
            kind: RevKind::RightSplit(info.clone()),
            stats: RevStats::new(stats.0, stats.1, now),
            batch_span: span,
        });
        // Non-owning duplicate of the pre-split history edge.
        rsr.next.store(expected_head, Ordering::Relaxed);
        let rsr_s = rsr.into_shared(guard);
        info.right.store(rsr_s, Ordering::Relaxed);
        let lsr = Owned::new(Revision {
            vref: lvref,
            data: ldata,
            next: crossbeam_epoch::Atomic::null(),
            kind: RevKind::LeftSplit(info),
            stats: RevStats::new(stats.0, stats.1, now),
            batch_span: span,
        });
        lsr.next.store(expected_head, Ordering::Relaxed);
        match node.head.compare_exchange(
            expected_head,
            lsr,
            Ordering::AcqRel,
            Ordering::Acquire,
            guard,
        ) {
            Ok(published) => {
                // SAFETY: just published under the enclosing pin guard.
                let lsr_v = unsafe { published.deref() }.version();
                jiffy_obs::trace_event!(
                    SplitBuild,
                    lsr_v.unsigned_abs(),
                    published.as_raw() as usize,
                    node_s.as_raw() as usize
                );
                Some(published)
            }
            Err(e) => {
                drop(e.new);
                // SAFETY: the CAS failed, so `rsr` was never published —
                // we still own it exclusively; reclaim directly.
                drop(unsafe { rsr_s.into_owned() });
                None
            }
        }
    }
}
