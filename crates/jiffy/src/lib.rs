//! **Jiffy** — a lock-free, linearizable ordered key-value index with
//! atomic batch updates and consistent snapshots.
//!
//! This crate is a from-scratch Rust reproduction of
//! *"Jiffy: A Lock-free Skip List with Batch Updates and Snapshots"*
//! (Kobus, Kokociński, Wojciechowski — PPoPP 2022; arXiv:2102.01044).
//!
//! # Architecture (paper §3)
//!
//! Jiffy is a multiversioned skip list. Each node of the lowest-level
//! list manages a contiguous key range and stores a list of immutable
//! *revisions* — snapshots of the node's entries, newest first, each
//! tagged with a version number read from a cheap machine-wide clock
//! (the CPU's TSC on x86_64; see [`jiffy_clock`]). Updates CAS a new
//! revision onto the head; readers pick the newest finalized revision at
//! or below their snapshot version. The index grows by *splitting* nodes
//! towards higher keys and shrinks by *merging* nodes towards lower keys,
//! both streamlined with the updates that trigger them, and an
//! autoscaling policy tunes revision sizes to the observed read/update
//! mix (§3.3.6).
//!
//! # Quick start
//!
//! ```
//! use jiffy::{Batch, BatchOp, JiffyMap};
//!
//! let map: JiffyMap<u64, String> = JiffyMap::new();
//! map.put(10, "ten".into());
//! map.put(20, "twenty".into());
//!
//! // Atomic batch: both changes become visible at one instant.
//! map.batch(Batch::new(vec![
//!     BatchOp::Put(30, "thirty".into()),
//!     BatchOp::Remove(10),
//! ]));
//!
//! let snap = map.snapshot();
//! assert_eq!(snap.get(&30).as_deref(), Some("thirty"));
//! assert_eq!(snap.get(&10), None);
//! ```
//!
//! # Memory reclamation
//!
//! The paper's Java implementation leans on the JVM GC; here, epoch-based
//! reclamation (`crossbeam-epoch`) frees unlinked nodes/revisions, while
//! Jiffy's own snapshot-driven revision GC (§3.3.4) decides *when* a
//! revision becomes unreachable — exactly as in the paper.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

/// Bump a per-thread op-cost counter field. Expands to nothing unless
/// the `perf-counters` feature is on, so hot-path call sites cost zero
/// in default builds.
macro_rules! perf_count {
    ($field:ident) => {
        perf_count!($field, 1)
    };
    ($field:ident, $n:expr) => {
        #[cfg(feature = "perf-counters")]
        {
            crate::counters::bump(|c| c.$field += $n as u64);
        }
        #[cfg(not(feature = "perf-counters"))]
        {
            // Evaluate nothing; keep `$n` syntactically reachable so the
            // call site type-checks identically with the feature off.
            let _ = || $n;
        }
    };
}

mod api;
mod autoscale;
mod backoff;
mod batch;
mod batch_exec;
mod config;
#[cfg(feature = "perf-counters")]
pub mod counters;
mod gc;
mod inner;
mod iter;
mod list;
mod map;
mod merge;
mod node;
mod ops;
mod read;
mod revision;
mod scan;
mod snapshot;
mod split;
mod two_phase;
mod version;

pub use config::JiffyConfig;
pub use inner::{MapKey, MapValue};
pub use iter::SnapshotIter;
pub use map::{JiffyMap, MapStats, Snapshot};
pub use two_phase::{TwoPhasePrepared, TwoPhaseTicket};

// Re-export the shared index API types so users need only this crate.
pub use index_api::{
    Batch, BatchOp, BatchPhase, BatchResolver, BulkLoad, OrderedIndex, PendingVersion,
    PreparedBatch, ReadView, SnapshotIndex, TwoPhaseBatch,
};
// Re-export the clocks for ablation experiments.
#[cfg(target_arch = "x86_64")]
pub use jiffy_clock::TscClock;
pub use jiffy_clock::{AtomicClock, DefaultClock, MonotonicClock, VersionClock};
