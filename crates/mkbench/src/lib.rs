//! The paper's custom microbenchmark (§4.2) as a reusable harness.
//!
//! Threads have fixed roles (update / lookup / scan) where the thread
//! count allows it, and interleave roles by ratio where it does not (so
//! a 1-thread "75 % lookup" cell really runs 75 % lookups); updates are
//! plain put/remove or 10-/100-op batches (sequential or random); keys
//! come from a uniform or Zipfian(0.99) distribution over a configurable
//! key space; the dataset is prefilled to ~50 % density (the paper's
//! 10 M entries over 20 M keys). Throughput is reported in basic
//! operations per second, *as verified by the index*: "a scan over 10
//! key-value entries counts as 10 get operations" — counted via the scan
//! sink, not assumed from the requested length — and a batch of `B`
//! unique updates counts as `B`. Per-role latency percentiles
//! (p50/p95/p99/max) come from hand-rolled log-bucketed histograms, and
//! `compare` diffs two `BENCH_*.json` reports as a regression gate.

pub mod artifacts;
pub mod client;
pub mod compare;
pub mod hist;
pub mod json;
pub mod registry;
pub mod report;
pub mod runner;

pub use artifacts::{prepare_artifact_dir, resolve_under};
pub use client::{run_client_driver, ClientDriverConfig};
pub use compare::{compare, parse_report, BenchReport, BenchRow, Comparison};
pub use hist::LogHistogram;
pub use registry::{indices_for_figure, make_index_u32, make_index_u64, IndexKind, DEFAULT_SHARDS};
pub use report::{
    write_csv, write_json, LatencySummary, Measurement, OpCosts, Row, RunMeta, ServerCounters,
};
pub use runner::{
    last_worker_panic, parse_inject_panic, run_scenario, with_panic_context, BenchKey, RunConfig,
};
