//! The paper's custom microbenchmark (§4.2) as a reusable harness.
//!
//! Threads have fixed roles (update / lookup / scan); updates are plain
//! put/remove or 10-/100-op batches (sequential or random); keys come
//! from a uniform or Zipfian(0.99) distribution over a configurable key
//! space; the dataset is prefilled to ~50 % density (the paper's 10 M
//! entries over 20 M keys). Throughput is reported in basic operations
//! per second: "a scan over 10 key-value entries counts as 10 get
//! operations", and a batch of `B` updates counts as `B`.

pub mod registry;
pub mod report;
pub mod runner;

pub use registry::{indices_for_figure, make_index_u32, make_index_u64, IndexKind};
pub use report::{write_csv, write_json, Measurement, Row, RunMeta};
pub use runner::{run_scenario, BenchKey, RunConfig};
