//! Measurement records, table rendering, and CSV output — one row per
//! (scenario, index, thread count), matching the series of the paper's
//! figures.

use std::fmt::Write as _;
use std::io::Write as _;

use workload::ThreadMix;

/// Percentile summary of one role's per-operation latency (a batch or a
/// scan counts as one operation here; throughput columns count basic
/// ops). Derived from the runner's log-bucketed histograms.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
    /// Latency samples taken (sampled, not one per op).
    pub samples: u64,
}

/// Aggregated per-thread op-cost counters from `jiffy`'s
/// `perf-counters` feature layer, summed over the recording window
/// across all worker threads. Purely informational v2 columns: the
/// compare gate never looks at them, but they are what proves a
/// cache-conscious change did its job when 1-core wall clock cannot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCosts {
    /// Skip-list descents (`find_node_for_key` calls).
    pub descents: u64,
    /// Nodes stepped through during those descents.
    pub nodes_visited: u64,
    /// Revisions inspected by lookup/scan chain walks.
    pub revisions_walked: u64,
    /// Locate-loop restarts.
    pub locate_retries: u64,
    /// Batch-helping loop iterations.
    pub help_iterations: u64,
    /// Bounded backoff waits taken instead of duplicating helping work.
    pub backoff_waits: u64,
    /// Point gets that attempted the flat fast path.
    pub fastpath_attempts: u64,
    /// Point gets fully served by the flat fast path.
    pub fastpath_hits: u64,
}

impl OpCosts {
    /// Mean nodes visited per descent (`None` if no descents ran).
    pub fn nodes_per_descent(&self) -> Option<f64> {
        (self.descents > 0).then(|| self.nodes_visited as f64 / self.descents as f64)
    }

    /// Fast-path hit rate in `[0, 1]` (`None` if no gets ran).
    pub fn fastpath_hit_rate(&self) -> Option<f64> {
        (self.fastpath_attempts > 0)
            .then(|| self.fastpath_hits as f64 / self.fastpath_attempts as f64)
    }
}

/// Server-side counters captured across a `mkbench client` measurement
/// window: the delta of the jiffy-server coalescing counters between
/// window open and close. `installed_batches`/`coalesced_puts` prove the
/// ingress coalescing actually converted pipelined single-key puts into
/// Jiffy batches (mean ops per installed batch > 1 under load). Additive
/// v2 column like `op_costs`; the compare gate ignores it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Coalesced multi-put batches installed via `batch_update`.
    pub installed_batches: u64,
    /// Single-key puts that rode in those batches.
    pub coalesced_puts: u64,
    /// Operations executed directly (lone puts, gets, removes, scans).
    pub direct_ops: u64,
    /// Client-submitted multi-key transactions.
    pub txns: u64,
}

impl ServerCounters {
    /// Mean client puts per installed batch (0.0 when none installed).
    pub fn ops_per_batch(&self) -> f64 {
        if self.installed_batches == 0 {
            0.0
        } else {
            self.coalesced_puts as f64 / self.installed_batches as f64
        }
    }
}

/// Throughput of one run, in millions of basic ops per second, plus the
/// v2 fields: effective mix and per-role latency percentiles.
#[derive(Clone, Copy, Debug, Default)]
pub struct Measurement {
    pub total_mops: f64,
    pub update_mops: f64,
    pub read_mops: f64,
    pub scan_mops: f64,
    /// The op-weight mix the run's threads were *scheduled to issue*
    /// (aggregate of the per-thread plans), recorded so a row can never
    /// claim a mixed scenario while scheduling update-only (the seed
    /// baseline's `t=1` lie). Note this is issue-weight, not op-count
    /// share: roles differ in per-op cost, so the share of ops each
    /// role completed is what the `*_mops` columns report. (v2)
    pub mix: ThreadMix,
    /// Per-role latency, present only for roles the run exercised (v2).
    pub update_lat: Option<LatencySummary>,
    pub lookup_lat: Option<LatencySummary>,
    pub scan_lat: Option<LatencySummary>,
    /// Op-cost counters, present only when the harness was built with
    /// `perf-counters` and the index reported any activity (v2,
    /// informational — additive like `latency_ns`, so v1/v2 consumers
    /// and the compare gate are unaffected).
    pub op_costs: Option<OpCosts>,
    /// Flight-recorder event counts (one slot per `jiffy_obs::EventKind`
    /// discriminant) accumulated inside the measurement window, present
    /// only when the run emitted any events. Additive like `op_costs`;
    /// the compare gate ignores it.
    pub trace_events: Option<[u64; jiffy_obs::KIND_COUNT]>,
    /// Server-side coalescing counters, present only on rows produced by
    /// the `client` end-to-end driver (additive; gate-ignored).
    pub server: Option<ServerCounters>,
}

/// One output row.
#[derive(Clone, Debug)]
pub struct Row {
    pub scenario: String,
    pub index: String,
    pub threads: usize,
    pub m: Measurement,
}

/// Render rows grouped by scenario as an aligned text table (the
/// "same rows/series the paper reports": one series per index, one
/// column per thread count).
pub fn render_table(rows: &[Row]) -> String {
    let mut out = String::new();
    let mut scenarios: Vec<&str> = rows.iter().map(|r| r.scenario.as_str()).collect();
    scenarios.dedup();
    let mut threads: Vec<usize> = rows.iter().map(|r| r.threads).collect();
    threads.sort_unstable();
    threads.dedup();
    for sc in scenarios {
        let _ = writeln!(out, "\n# {sc}  (Mops/s total | update)");
        let _ = write!(out, "{:<10}", "index");
        for t in &threads {
            let _ = write!(out, "{:>20}", format!("{t} thr"));
        }
        let _ = writeln!(out);
        let mut indices: Vec<&str> =
            rows.iter().filter(|r| r.scenario == sc).map(|r| r.index.as_str()).collect();
        indices.dedup();
        for idx in indices {
            let _ = write!(out, "{idx:<10}");
            for t in &threads {
                if let Some(r) =
                    rows.iter().find(|r| r.scenario == sc && r.index == idx && r.threads == *t)
                {
                    let _ = write!(
                        out,
                        "{:>20}",
                        format!("{:8.3} | {:7.3}", r.m.total_mops, r.m.update_mops)
                    );
                } else {
                    let _ = write!(out, "{:>20}", "-");
                }
            }
            let _ = writeln!(out);
        }
    }
    out
}

/// Metadata describing one harness invocation, embedded in JSON reports.
#[derive(Clone, Debug)]
pub struct RunMeta {
    /// What was run ("figure6", "speedup", ...).
    pub label: String,
    pub threads: Vec<usize>,
    pub secs: f64,
    pub warmup: f64,
    pub key_space: u64,
    /// Unix seconds at report time.
    pub created_unix: u64,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn latency_json(role: &str, lat: &Option<LatencySummary>) -> Option<String> {
    lat.map(|l| {
        format!(
            "\"{role}\": {{ \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}, \"samples\": {} }}",
            l.p50_ns, l.p95_ns, l.p99_ns, l.max_ns, l.samples
        )
    })
}

/// Render rows as a `BENCH_*.json`-schema report (hand-rolled: the build
/// environment vendors no serde). Schema `jiffy-mkbench/v2`:
/// `{schema, label, created_unix, config{...}, rows[{scenario, index,
/// threads, total_mops, update_mops, read_mops, scan_mops,
/// effective_mix{update, lookup, scan}, latency_ns{<role>{p50, p95, p99,
/// max, samples}, ...}}]}`. The four v1 throughput columns are carried
/// unchanged so v1 consumers (and `mkbench compare` against v1
/// baselines) keep working; `latency_ns` holds only roles the run
/// actually exercised, and `op_costs` (raw counter totals plus derived
/// `nodes_per_descent` / `fastpath_hit_rate`) appears only on rows
/// measured with the `perf-counters` feature. `trace_events` (nonzero
/// flight-recorder kind → window count) appears only on rows whose run
/// recorded any events.
pub fn render_json(meta: &RunMeta, rows: &[Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"jiffy-mkbench/v2\",");
    let _ = writeln!(out, "  \"label\": \"{}\",", json_escape(&meta.label));
    let _ = writeln!(out, "  \"created_unix\": {},", meta.created_unix);
    let threads: Vec<String> = meta.threads.iter().map(|t| t.to_string()).collect();
    let _ = writeln!(
        out,
        "  \"config\": {{ \"threads\": [{}], \"secs\": {}, \"warmup\": {}, \"key_space\": {} }},",
        threads.join(", "),
        meta.secs,
        meta.warmup,
        meta.key_space
    );
    let _ = writeln!(out, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = write!(
            out,
            "    {{ \"scenario\": \"{}\", \"index\": \"{}\", \"threads\": {}, \
             \"total_mops\": {:.6}, \"update_mops\": {:.6}, \"read_mops\": {:.6}, \
             \"scan_mops\": {:.6}, \"effective_mix\": {{ \"update\": {:.6}, \
             \"lookup\": {:.6}, \"scan\": {:.6} }}",
            json_escape(&r.scenario),
            json_escape(&r.index),
            r.threads,
            r.m.total_mops,
            r.m.update_mops,
            r.m.read_mops,
            r.m.scan_mops,
            r.m.mix.update,
            r.m.mix.lookup,
            r.m.mix.scan
        );
        let lat: Vec<String> = [
            latency_json("update", &r.m.update_lat),
            latency_json("lookup", &r.m.lookup_lat),
            latency_json("scan", &r.m.scan_lat),
        ]
        .into_iter()
        .flatten()
        .collect();
        if !lat.is_empty() {
            let _ = write!(out, ", \"latency_ns\": {{ {} }}", lat.join(", "));
        }
        if let Some(c) = &r.m.op_costs {
            let _ = write!(
                out,
                ", \"op_costs\": {{ \"descents\": {}, \"nodes_visited\": {}, \
                 \"revisions_walked\": {}, \"locate_retries\": {}, \"help_iterations\": {}, \
                 \"backoff_waits\": {}, \"fastpath_attempts\": {}, \"fastpath_hits\": {}, \
                 \"nodes_per_descent\": {:.3}, \"fastpath_hit_rate\": {:.4} }}",
                c.descents,
                c.nodes_visited,
                c.revisions_walked,
                c.locate_retries,
                c.help_iterations,
                c.backoff_waits,
                c.fastpath_attempts,
                c.fastpath_hits,
                c.nodes_per_descent().unwrap_or(0.0),
                c.fastpath_hit_rate().unwrap_or(0.0)
            );
        }
        if let Some(ev) = &r.m.trace_events {
            let named: Vec<String> = jiffy_obs::ALL_KINDS
                .iter()
                .map(|k| (k.name(), ev[*k as usize]))
                .filter(|(_, n)| *n > 0)
                .map(|(name, n)| format!("\"{name}\": {n}"))
                .collect();
            let _ = write!(out, ", \"trace_events\": {{ {} }}", named.join(", "));
        }
        if let Some(sv) = &r.m.server {
            let _ = write!(
                out,
                ", \"server\": {{ \"installed_batches\": {}, \"coalesced_puts\": {}, \
                 \"direct_ops\": {}, \"txns\": {}, \"ops_per_batch\": {:.3} }}",
                sv.installed_batches,
                sv.coalesced_puts,
                sv.direct_ops,
                sv.txns,
                sv.ops_per_batch()
            );
        }
        let _ = writeln!(out, " }}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Render a merged flight-recorder trace plus an observability snapshot
/// as JSON (hand-rolled, like [`render_json`]). Schema
/// `jiffy-obs-trace/v1`: `{schema, label, created_unix, events[{stamp,
/// thread, seq, kind, a, b}], snapshot{total_events, threads,
/// event_counts{<kind>: n}, histograms{<name>{count, p50, p95, p99,
/// max}}, structures[{label, nodes, entries, mean_revision_size,
/// max_revision_depth, shards[...]}]}}`. Events arrive already sorted
/// by `(stamp, thread, seq)` from `jiffy_obs::merged_trace`.
pub fn render_trace_json(
    label: &str,
    created_unix: u64,
    trace: &[jiffy_obs::TraceEvent],
    snap: &jiffy_obs::ObsSnapshot,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"jiffy-obs-trace/v1\",");
    let _ = writeln!(out, "  \"label\": \"{}\",", json_escape(label));
    let _ = writeln!(out, "  \"created_unix\": {created_unix},");
    let _ = writeln!(out, "  \"events\": [");
    for (i, e) in trace.iter().enumerate() {
        let comma = if i + 1 < trace.len() { "," } else { "" };
        // `hinted` is emitted only when set: borrowed-stamp events are
        // rare and the column stays additive for existing consumers.
        let hinted = if e.hinted { ", \"hinted\": true" } else { "" };
        let _ = writeln!(
            out,
            "    {{ \"stamp\": {}, \"thread\": {}, \"seq\": {}, \"kind\": \"{}\", \
             \"a\": {}, \"b\": {}{hinted} }}{comma}",
            e.stamp,
            e.thread,
            e.seq,
            e.kind.name(),
            e.a,
            e.b
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"snapshot\": {{");
    let _ = writeln!(out, "    \"total_events\": {},", snap.total_events);
    let _ = writeln!(out, "    \"threads\": {},", snap.threads);
    let counts: Vec<String> =
        snap.event_counts.iter().map(|(k, n)| format!("\"{}\": {n}", k.name())).collect();
    let _ = writeln!(out, "    \"event_counts\": {{ {} }},", counts.join(", "));
    let hists: Vec<String> = snap
        .histograms
        .iter()
        .map(|(name, h)| {
            format!(
                "\"{}\": {{ \"count\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {} }}",
                json_escape(name),
                h.count,
                h.p50,
                h.p95,
                h.p99,
                h.max
            )
        })
        .collect();
    let _ = writeln!(out, "    \"histograms\": {{ {} }},", hists.join(", "));
    let _ = writeln!(out, "    \"structures\": [");
    for (i, st) in snap.structures.iter().enumerate() {
        let comma = if i + 1 < snap.structures.len() { "," } else { "" };
        let _ = write!(
            out,
            "      {{ \"label\": \"{}\", \"nodes\": {}, \"entries\": {}, \
             \"mean_revision_size\": {:.3}, \"max_revision_depth\": {}",
            json_escape(&st.label),
            st.nodes,
            st.entries,
            st.mean_revision_size,
            st.max_revision_depth
        );
        if !st.shards.is_empty() {
            let shards: Vec<String> = st
                .shards
                .iter()
                .map(|s| {
                    format!(
                        "{{ \"reads\": {}, \"updates\": {}, \"nodes\": {}, \"entries\": {}, \
                         \"mean_revision_size\": {:.3}, \"max_revision_depth\": {} }}",
                        s.reads,
                        s.updates,
                        s.nodes,
                        s.entries,
                        s.mean_revision_size,
                        s.max_revision_depth
                    )
                })
                .collect();
            let _ = write!(out, ", \"shards\": [{}]", shards.join(", "));
        }
        let _ = writeln!(out, " }}{comma}");
    }
    let _ = writeln!(out, "    ]");
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}

/// Write rows as a `BENCH_*.json`-schema report (see [`render_json`]).
pub fn write_json(path: &std::path::Path, meta: &RunMeta, rows: &[Row]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, render_json(meta, rows))
}

/// Write rows as CSV (one line per row; stable column order).
pub fn write_csv(path: &std::path::Path, rows: &[Row]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "scenario,index,threads,total_mops,update_mops,read_mops,scan_mops")?;
    for r in rows {
        writeln!(
            f,
            "{},{},{},{:.6},{:.6},{:.6},{:.6}",
            r.scenario,
            r.index,
            r.threads,
            r.m.total_mops,
            r.m.update_mops,
            r.m.read_mops,
            r.m.scan_mops
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(sc: &str, idx: &str, t: usize, total: f64) -> Row {
        Row {
            scenario: sc.into(),
            index: idx.into(),
            threads: t,
            m: Measurement { total_mops: total, update_mops: total / 2.0, ..Default::default() },
        }
    }

    #[test]
    fn table_contains_series() {
        let rows = vec![
            row("plot_x_a", "jiffy", 1, 1.0),
            row("plot_x_a", "jiffy", 2, 1.8),
            row("plot_x_a", "cslm", 1, 1.2),
        ];
        let t = render_table(&rows);
        assert!(t.contains("plot_x_a"));
        assert!(t.contains("jiffy"));
        assert!(t.contains("cslm"));
        assert!(t.contains("1 thr"));
        assert!(t.contains("2 thr"));
    }

    #[test]
    fn json_schema_and_escaping() {
        let meta = RunMeta {
            label: "fig\"6\"".into(),
            threads: vec![1, 2],
            secs: 0.5,
            warmup: 0.25,
            key_space: 1000,
            created_unix: 42,
        };
        let mut rows = vec![row("s1", "jiffy", 1, 1.5), row("s1", "cslm", 2, 0.5)];
        rows[0].m.mix = ThreadMix { update: 0.25, lookup: 0.75, scan: 0.0 };
        rows[0].m.update_lat =
            Some(LatencySummary { p50_ns: 100, p95_ns: 200, p99_ns: 400, max_ns: 900, samples: 7 });
        let text = render_json(&meta, &rows);
        assert!(text.contains("\"schema\": \"jiffy-mkbench/v2\""));
        assert!(text.contains("\"label\": \"fig\\\"6\\\"\""));
        assert!(text.contains("\"threads\": [1, 2]"));
        assert!(text.contains("\"index\": \"jiffy\""));
        assert!(text.contains("\"total_mops\": 1.500000"));
        // v2 fields: effective mix on every row, latency only for roles
        // that actually ran.
        assert!(text.contains("\"effective_mix\": { \"update\": 0.250000"));
        assert!(text.contains("\"latency_ns\": { \"update\": { \"p50\": 100, \"p95\": 200"));
        assert_eq!(text.matches("latency_ns").count(), 1, "empty roles must be omitted");
        // Balanced braces (structurally valid JSON object).
        let braces = text.matches('{').count();
        assert_eq!(braces, text.matches('}').count());
    }

    #[test]
    fn json_op_costs_only_when_present() {
        let meta = RunMeta {
            label: "counters".into(),
            threads: vec![1],
            secs: 0.1,
            warmup: 0.0,
            key_space: 10,
            created_unix: 1,
        };
        let mut rows = vec![row("s1", "jiffy", 1, 1.0), row("s1", "cslm", 1, 1.0)];
        rows[0].m.op_costs = Some(OpCosts {
            descents: 10,
            nodes_visited: 35,
            revisions_walked: 12,
            locate_retries: 1,
            help_iterations: 2,
            backoff_waits: 3,
            fastpath_attempts: 8,
            fastpath_hits: 6,
        });
        let text = render_json(&meta, &rows);
        // Counter columns are additive and appear only on the row that
        // actually measured them (like latency_ns).
        assert_eq!(text.matches("op_costs").count(), 1);
        assert!(text.contains("\"nodes_visited\": 35"));
        assert!(text.contains("\"nodes_per_descent\": 3.500"));
        assert!(text.contains("\"fastpath_hit_rate\": 0.7500"));
        let braces = text.matches('{').count();
        assert_eq!(braces, text.matches('}').count());
    }

    #[test]
    fn json_trace_events_only_nonzero_kinds() {
        let meta = RunMeta {
            label: "trace".into(),
            threads: vec![1],
            secs: 0.1,
            warmup: 0.0,
            key_space: 10,
            created_unix: 1,
        };
        let mut rows = vec![row("s1", "jiffy", 1, 1.0), row("s1", "cslm", 1, 1.0)];
        let mut ev = [0u64; jiffy_obs::KIND_COUNT];
        ev[jiffy_obs::EventKind::SplitPublish as usize] = 4;
        ev[jiffy_obs::EventKind::GcFloorAdvance as usize] = 9;
        rows[0].m.trace_events = Some(ev);
        let text = render_json(&meta, &rows);
        assert_eq!(text.matches("trace_events").count(), 1, "baseline row must omit the column");
        assert!(text.contains("\"SplitPublish\": 4"), "{text}");
        assert!(text.contains("\"GcFloorAdvance\": 9"), "{text}");
        assert!(!text.contains("TwoPhasePrepare"), "zero kinds must be omitted");
        let braces = text.matches('{').count();
        assert_eq!(braces, text.matches('}').count());
    }

    #[test]
    fn op_costs_derived_rates() {
        let z = OpCosts::default();
        assert_eq!(z.nodes_per_descent(), None);
        assert_eq!(z.fastpath_hit_rate(), None);
    }

    #[test]
    fn trace_json_schema_and_balance() {
        let trace = vec![
            jiffy_obs::TraceEvent {
                stamp: 10,
                hinted: false,
                thread: 0,
                seq: 1,
                kind: jiffy_obs::EventKind::ReshardStage,
                a: 2,
                b: 4,
            },
            jiffy_obs::TraceEvent {
                stamp: 12,
                hinted: true,
                thread: 1,
                seq: 1,
                kind: jiffy_obs::EventKind::ReshardCutover,
                a: 4,
                b: 2,
            },
        ];
        let mut snap = jiffy_obs::ObsSnapshot {
            event_counts: vec![(jiffy_obs::EventKind::ReshardStage, 1)],
            total_events: 2,
            threads: 2,
            ..Default::default()
        };
        snap.add_structure(jiffy_obs::StructureStats {
            label: "elastic \"x\"".into(),
            nodes: 3,
            entries: 9,
            mean_revision_size: 3.0,
            max_revision_depth: 2,
            shards: vec![jiffy_obs::ShardObs { reads: 5, updates: 7, ..Default::default() }],
        });
        let text = render_trace_json("trace", 42, &trace, &snap);
        assert!(text.contains("\"schema\": \"jiffy-obs-trace/v1\""));
        assert!(text.contains("\"kind\": \"ReshardStage\""));
        assert!(text.contains("\"kind\": \"ReshardCutover\""));
        // Hinted stamps are marked; clock-exact events omit the column.
        assert!(text.contains("\"b\": 2, \"hinted\": true"), "{text}");
        assert!(!text.contains("\"b\": 4, \"hinted\""), "{text}");
        assert!(text.contains("\"event_counts\": { \"ReshardStage\": 1 }"));
        assert!(text.contains("\"label\": \"elastic \\\"x\\\"\""));
        assert!(text.contains("\"shards\": [{ \"reads\": 5, \"updates\": 7"));
        let braces = text.matches('{').count();
        assert_eq!(braces, text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn json_roundtrip_to_disk() {
        let dir = std::env::temp_dir().join("mkbench-json-test");
        let path = dir.join("BENCH_test.json");
        let meta = RunMeta {
            label: "smoke".into(),
            threads: vec![1],
            secs: 0.1,
            warmup: 0.0,
            key_space: 10,
            created_unix: 0,
        };
        write_json(&path, &meta, &[row("s", "jiffy", 1, 2.0)]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with('{'));
        assert!(text.trim_end().ends_with('}'));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("mkbench-test");
        let path = dir.join("out.csv");
        let rows = vec![row("s", "jiffy", 2, 3.5)];
        write_csv(&path, &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("scenario,index,threads"));
        assert!(text.contains("s,jiffy,2,3.5"));
        let _ = std::fs::remove_dir_all(dir);
    }
}
