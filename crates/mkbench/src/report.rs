//! Measurement records, table rendering, and CSV output — one row per
//! (scenario, index, thread count), matching the series of the paper's
//! figures.

use std::fmt::Write as _;
use std::io::Write as _;

/// Throughput of one run, in millions of basic ops per second.
#[derive(Clone, Copy, Debug, Default)]
pub struct Measurement {
    pub total_mops: f64,
    pub update_mops: f64,
    pub read_mops: f64,
    pub scan_mops: f64,
}

/// One output row.
#[derive(Clone, Debug)]
pub struct Row {
    pub scenario: String,
    pub index: String,
    pub threads: usize,
    pub m: Measurement,
}

/// Render rows grouped by scenario as an aligned text table (the
/// "same rows/series the paper reports": one series per index, one
/// column per thread count).
pub fn render_table(rows: &[Row]) -> String {
    let mut out = String::new();
    let mut scenarios: Vec<&str> = rows.iter().map(|r| r.scenario.as_str()).collect();
    scenarios.dedup();
    let mut threads: Vec<usize> = rows.iter().map(|r| r.threads).collect();
    threads.sort_unstable();
    threads.dedup();
    for sc in scenarios {
        let _ = writeln!(out, "\n# {sc}  (Mops/s total | update)");
        let _ = write!(out, "{:<10}", "index");
        for t in &threads {
            let _ = write!(out, "{:>20}", format!("{t} thr"));
        }
        let _ = writeln!(out);
        let mut indices: Vec<&str> = rows
            .iter()
            .filter(|r| r.scenario == sc)
            .map(|r| r.index.as_str())
            .collect();
        indices.dedup();
        for idx in indices {
            let _ = write!(out, "{idx:<10}");
            for t in &threads {
                if let Some(r) = rows
                    .iter()
                    .find(|r| r.scenario == sc && r.index == idx && r.threads == *t)
                {
                    let _ = write!(
                        out,
                        "{:>20}",
                        format!("{:8.3} | {:7.3}", r.m.total_mops, r.m.update_mops)
                    );
                } else {
                    let _ = write!(out, "{:>20}", "-");
                }
            }
            let _ = writeln!(out);
        }
    }
    out
}

/// Write rows as CSV (one line per row; stable column order).
pub fn write_csv(path: &std::path::Path, rows: &[Row]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "scenario,index,threads,total_mops,update_mops,read_mops,scan_mops")?;
    for r in rows {
        writeln!(
            f,
            "{},{},{},{:.6},{:.6},{:.6},{:.6}",
            r.scenario, r.index, r.threads, r.m.total_mops, r.m.update_mops, r.m.read_mops,
            r.m.scan_mops
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(sc: &str, idx: &str, t: usize, total: f64) -> Row {
        Row {
            scenario: sc.into(),
            index: idx.into(),
            threads: t,
            m: Measurement { total_mops: total, update_mops: total / 2.0, ..Default::default() },
        }
    }

    #[test]
    fn table_contains_series() {
        let rows = vec![
            row("plot_x_a", "jiffy", 1, 1.0),
            row("plot_x_a", "jiffy", 2, 1.8),
            row("plot_x_a", "cslm", 1, 1.2),
        ];
        let t = render_table(&rows);
        assert!(t.contains("plot_x_a"));
        assert!(t.contains("jiffy"));
        assert!(t.contains("cslm"));
        assert!(t.contains("1 thr"));
        assert!(t.contains("2 thr"));
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("mkbench-test");
        let path = dir.join("out.csv");
        let rows = vec![row("s", "jiffy", 2, 3.5)];
        write_csv(&path, &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("scenario,index,threads"));
        assert!(text.contains("s,jiffy,2,3.5"));
        let _ = std::fs::remove_dir_all(dir);
    }
}
