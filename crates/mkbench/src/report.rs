//! Measurement records, table rendering, and CSV output — one row per
//! (scenario, index, thread count), matching the series of the paper's
//! figures.

use std::fmt::Write as _;
use std::io::Write as _;

use workload::ThreadMix;

/// Percentile summary of one role's per-operation latency (a batch or a
/// scan counts as one operation here; throughput columns count basic
/// ops). Derived from the runner's log-bucketed histograms.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
    /// Latency samples taken (sampled, not one per op).
    pub samples: u64,
}

/// Aggregated per-thread op-cost counters from `jiffy`'s
/// `perf-counters` feature layer, summed over the recording window
/// across all worker threads. Purely informational v2 columns: the
/// compare gate never looks at them, but they are what proves a
/// cache-conscious change did its job when 1-core wall clock cannot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCosts {
    /// Skip-list descents (`find_node_for_key` calls).
    pub descents: u64,
    /// Nodes stepped through during those descents.
    pub nodes_visited: u64,
    /// Revisions inspected by lookup/scan chain walks.
    pub revisions_walked: u64,
    /// Locate-loop restarts.
    pub locate_retries: u64,
    /// Batch-helping loop iterations.
    pub help_iterations: u64,
    /// Bounded backoff waits taken instead of duplicating helping work.
    pub backoff_waits: u64,
    /// Point gets that attempted the flat fast path.
    pub fastpath_attempts: u64,
    /// Point gets fully served by the flat fast path.
    pub fastpath_hits: u64,
}

impl OpCosts {
    /// Mean nodes visited per descent (`None` if no descents ran).
    pub fn nodes_per_descent(&self) -> Option<f64> {
        (self.descents > 0).then(|| self.nodes_visited as f64 / self.descents as f64)
    }

    /// Fast-path hit rate in `[0, 1]` (`None` if no gets ran).
    pub fn fastpath_hit_rate(&self) -> Option<f64> {
        (self.fastpath_attempts > 0)
            .then(|| self.fastpath_hits as f64 / self.fastpath_attempts as f64)
    }
}

/// Throughput of one run, in millions of basic ops per second, plus the
/// v2 fields: effective mix and per-role latency percentiles.
#[derive(Clone, Copy, Debug, Default)]
pub struct Measurement {
    pub total_mops: f64,
    pub update_mops: f64,
    pub read_mops: f64,
    pub scan_mops: f64,
    /// The op-weight mix the run's threads were *scheduled to issue*
    /// (aggregate of the per-thread plans), recorded so a row can never
    /// claim a mixed scenario while scheduling update-only (the seed
    /// baseline's `t=1` lie). Note this is issue-weight, not op-count
    /// share: roles differ in per-op cost, so the share of ops each
    /// role completed is what the `*_mops` columns report. (v2)
    pub mix: ThreadMix,
    /// Per-role latency, present only for roles the run exercised (v2).
    pub update_lat: Option<LatencySummary>,
    pub lookup_lat: Option<LatencySummary>,
    pub scan_lat: Option<LatencySummary>,
    /// Op-cost counters, present only when the harness was built with
    /// `perf-counters` and the index reported any activity (v2,
    /// informational — additive like `latency_ns`, so v1/v2 consumers
    /// and the compare gate are unaffected).
    pub op_costs: Option<OpCosts>,
}

/// One output row.
#[derive(Clone, Debug)]
pub struct Row {
    pub scenario: String,
    pub index: String,
    pub threads: usize,
    pub m: Measurement,
}

/// Render rows grouped by scenario as an aligned text table (the
/// "same rows/series the paper reports": one series per index, one
/// column per thread count).
pub fn render_table(rows: &[Row]) -> String {
    let mut out = String::new();
    let mut scenarios: Vec<&str> = rows.iter().map(|r| r.scenario.as_str()).collect();
    scenarios.dedup();
    let mut threads: Vec<usize> = rows.iter().map(|r| r.threads).collect();
    threads.sort_unstable();
    threads.dedup();
    for sc in scenarios {
        let _ = writeln!(out, "\n# {sc}  (Mops/s total | update)");
        let _ = write!(out, "{:<10}", "index");
        for t in &threads {
            let _ = write!(out, "{:>20}", format!("{t} thr"));
        }
        let _ = writeln!(out);
        let mut indices: Vec<&str> =
            rows.iter().filter(|r| r.scenario == sc).map(|r| r.index.as_str()).collect();
        indices.dedup();
        for idx in indices {
            let _ = write!(out, "{idx:<10}");
            for t in &threads {
                if let Some(r) =
                    rows.iter().find(|r| r.scenario == sc && r.index == idx && r.threads == *t)
                {
                    let _ = write!(
                        out,
                        "{:>20}",
                        format!("{:8.3} | {:7.3}", r.m.total_mops, r.m.update_mops)
                    );
                } else {
                    let _ = write!(out, "{:>20}", "-");
                }
            }
            let _ = writeln!(out);
        }
    }
    out
}

/// Metadata describing one harness invocation, embedded in JSON reports.
#[derive(Clone, Debug)]
pub struct RunMeta {
    /// What was run ("figure6", "speedup", ...).
    pub label: String,
    pub threads: Vec<usize>,
    pub secs: f64,
    pub warmup: f64,
    pub key_space: u64,
    /// Unix seconds at report time.
    pub created_unix: u64,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn latency_json(role: &str, lat: &Option<LatencySummary>) -> Option<String> {
    lat.map(|l| {
        format!(
            "\"{role}\": {{ \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}, \"samples\": {} }}",
            l.p50_ns, l.p95_ns, l.p99_ns, l.max_ns, l.samples
        )
    })
}

/// Render rows as a `BENCH_*.json`-schema report (hand-rolled: the build
/// environment vendors no serde). Schema `jiffy-mkbench/v2`:
/// `{schema, label, created_unix, config{...}, rows[{scenario, index,
/// threads, total_mops, update_mops, read_mops, scan_mops,
/// effective_mix{update, lookup, scan}, latency_ns{<role>{p50, p95, p99,
/// max, samples}, ...}}]}`. The four v1 throughput columns are carried
/// unchanged so v1 consumers (and `mkbench compare` against v1
/// baselines) keep working; `latency_ns` holds only roles the run
/// actually exercised, and `op_costs` (raw counter totals plus derived
/// `nodes_per_descent` / `fastpath_hit_rate`) appears only on rows
/// measured with the `perf-counters` feature.
pub fn render_json(meta: &RunMeta, rows: &[Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"jiffy-mkbench/v2\",");
    let _ = writeln!(out, "  \"label\": \"{}\",", json_escape(&meta.label));
    let _ = writeln!(out, "  \"created_unix\": {},", meta.created_unix);
    let threads: Vec<String> = meta.threads.iter().map(|t| t.to_string()).collect();
    let _ = writeln!(
        out,
        "  \"config\": {{ \"threads\": [{}], \"secs\": {}, \"warmup\": {}, \"key_space\": {} }},",
        threads.join(", "),
        meta.secs,
        meta.warmup,
        meta.key_space
    );
    let _ = writeln!(out, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = write!(
            out,
            "    {{ \"scenario\": \"{}\", \"index\": \"{}\", \"threads\": {}, \
             \"total_mops\": {:.6}, \"update_mops\": {:.6}, \"read_mops\": {:.6}, \
             \"scan_mops\": {:.6}, \"effective_mix\": {{ \"update\": {:.6}, \
             \"lookup\": {:.6}, \"scan\": {:.6} }}",
            json_escape(&r.scenario),
            json_escape(&r.index),
            r.threads,
            r.m.total_mops,
            r.m.update_mops,
            r.m.read_mops,
            r.m.scan_mops,
            r.m.mix.update,
            r.m.mix.lookup,
            r.m.mix.scan
        );
        let lat: Vec<String> = [
            latency_json("update", &r.m.update_lat),
            latency_json("lookup", &r.m.lookup_lat),
            latency_json("scan", &r.m.scan_lat),
        ]
        .into_iter()
        .flatten()
        .collect();
        if !lat.is_empty() {
            let _ = write!(out, ", \"latency_ns\": {{ {} }}", lat.join(", "));
        }
        if let Some(c) = &r.m.op_costs {
            let _ = write!(
                out,
                ", \"op_costs\": {{ \"descents\": {}, \"nodes_visited\": {}, \
                 \"revisions_walked\": {}, \"locate_retries\": {}, \"help_iterations\": {}, \
                 \"backoff_waits\": {}, \"fastpath_attempts\": {}, \"fastpath_hits\": {}, \
                 \"nodes_per_descent\": {:.3}, \"fastpath_hit_rate\": {:.4} }}",
                c.descents,
                c.nodes_visited,
                c.revisions_walked,
                c.locate_retries,
                c.help_iterations,
                c.backoff_waits,
                c.fastpath_attempts,
                c.fastpath_hits,
                c.nodes_per_descent().unwrap_or(0.0),
                c.fastpath_hit_rate().unwrap_or(0.0)
            );
        }
        let _ = writeln!(out, " }}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Write rows as a `BENCH_*.json`-schema report (see [`render_json`]).
pub fn write_json(path: &std::path::Path, meta: &RunMeta, rows: &[Row]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, render_json(meta, rows))
}

/// Write rows as CSV (one line per row; stable column order).
pub fn write_csv(path: &std::path::Path, rows: &[Row]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "scenario,index,threads,total_mops,update_mops,read_mops,scan_mops")?;
    for r in rows {
        writeln!(
            f,
            "{},{},{},{:.6},{:.6},{:.6},{:.6}",
            r.scenario,
            r.index,
            r.threads,
            r.m.total_mops,
            r.m.update_mops,
            r.m.read_mops,
            r.m.scan_mops
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(sc: &str, idx: &str, t: usize, total: f64) -> Row {
        Row {
            scenario: sc.into(),
            index: idx.into(),
            threads: t,
            m: Measurement { total_mops: total, update_mops: total / 2.0, ..Default::default() },
        }
    }

    #[test]
    fn table_contains_series() {
        let rows = vec![
            row("plot_x_a", "jiffy", 1, 1.0),
            row("plot_x_a", "jiffy", 2, 1.8),
            row("plot_x_a", "cslm", 1, 1.2),
        ];
        let t = render_table(&rows);
        assert!(t.contains("plot_x_a"));
        assert!(t.contains("jiffy"));
        assert!(t.contains("cslm"));
        assert!(t.contains("1 thr"));
        assert!(t.contains("2 thr"));
    }

    #[test]
    fn json_schema_and_escaping() {
        let meta = RunMeta {
            label: "fig\"6\"".into(),
            threads: vec![1, 2],
            secs: 0.5,
            warmup: 0.25,
            key_space: 1000,
            created_unix: 42,
        };
        let mut rows = vec![row("s1", "jiffy", 1, 1.5), row("s1", "cslm", 2, 0.5)];
        rows[0].m.mix = ThreadMix { update: 0.25, lookup: 0.75, scan: 0.0 };
        rows[0].m.update_lat =
            Some(LatencySummary { p50_ns: 100, p95_ns: 200, p99_ns: 400, max_ns: 900, samples: 7 });
        let text = render_json(&meta, &rows);
        assert!(text.contains("\"schema\": \"jiffy-mkbench/v2\""));
        assert!(text.contains("\"label\": \"fig\\\"6\\\"\""));
        assert!(text.contains("\"threads\": [1, 2]"));
        assert!(text.contains("\"index\": \"jiffy\""));
        assert!(text.contains("\"total_mops\": 1.500000"));
        // v2 fields: effective mix on every row, latency only for roles
        // that actually ran.
        assert!(text.contains("\"effective_mix\": { \"update\": 0.250000"));
        assert!(text.contains("\"latency_ns\": { \"update\": { \"p50\": 100, \"p95\": 200"));
        assert_eq!(text.matches("latency_ns").count(), 1, "empty roles must be omitted");
        // Balanced braces (structurally valid JSON object).
        let braces = text.matches('{').count();
        assert_eq!(braces, text.matches('}').count());
    }

    #[test]
    fn json_op_costs_only_when_present() {
        let meta = RunMeta {
            label: "counters".into(),
            threads: vec![1],
            secs: 0.1,
            warmup: 0.0,
            key_space: 10,
            created_unix: 1,
        };
        let mut rows = vec![row("s1", "jiffy", 1, 1.0), row("s1", "cslm", 1, 1.0)];
        rows[0].m.op_costs = Some(OpCosts {
            descents: 10,
            nodes_visited: 35,
            revisions_walked: 12,
            locate_retries: 1,
            help_iterations: 2,
            backoff_waits: 3,
            fastpath_attempts: 8,
            fastpath_hits: 6,
        });
        let text = render_json(&meta, &rows);
        // Counter columns are additive and appear only on the row that
        // actually measured them (like latency_ns).
        assert_eq!(text.matches("op_costs").count(), 1);
        assert!(text.contains("\"nodes_visited\": 35"));
        assert!(text.contains("\"nodes_per_descent\": 3.500"));
        assert!(text.contains("\"fastpath_hit_rate\": 0.7500"));
        let braces = text.matches('{').count();
        assert_eq!(braces, text.matches('}').count());
    }

    #[test]
    fn op_costs_derived_rates() {
        let z = OpCosts::default();
        assert_eq!(z.nodes_per_descent(), None);
        assert_eq!(z.fastpath_hit_rate(), None);
    }

    #[test]
    fn json_roundtrip_to_disk() {
        let dir = std::env::temp_dir().join("mkbench-json-test");
        let path = dir.join("BENCH_test.json");
        let meta = RunMeta {
            label: "smoke".into(),
            threads: vec![1],
            secs: 0.1,
            warmup: 0.0,
            key_space: 10,
            created_unix: 0,
        };
        write_json(&path, &meta, &[row("s", "jiffy", 1, 2.0)]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with('{'));
        assert!(text.trim_end().ends_with('}'));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("mkbench-test");
        let path = dir.join("out.csv");
        let rows = vec![row("s", "jiffy", 2, 3.5)];
        write_csv(&path, &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("scenario,index,threads"));
        assert!(text.contains("s,jiffy,2,3.5"));
        let _ = std::fs::remove_dir_all(dir);
    }
}
