//! `mkbench` — regenerate the paper's evaluation (Figures 5–10 plus the
//! §4.3 headline numbers and the design ablations).
//!
//! ```text
//! mkbench figure <5..=10> [--threads 1,2,4] [--secs 0.5] [--keys 100000] [--out results/figN.csv] [--json BENCH_figN.json]
//! mkbench quick          [--threads N] [--indices a,b,c] [--json BENCH_pr2.json]  # update/lookup/scan cells, compact lineup
//! mkbench compare OLD.json NEW.json [--tolerance PCT]            # perf gate: exit 1 on throughput regression
//! mkbench sharding       [--threads N] [--shards N] [--keys K]   # jiffy vs sharded-jiffy, uniform vs shard-skewed
//! mkbench reshard        [--threads N] [--shards N] [--keys K]   # throughput through live shard split/merge (elastic-jiffy)
//! mkbench speedup        [--threads N] [--secs S] [--keys K]     # §4.3: Jiffy vs CA-AVL/CA-SL, 100-op random batches
//! mkbench autoscale      [--secs S] [--keys K]                   # §4.3: revision sizes under write-only vs update-lookup
//! mkbench ablation clock|hash|revsize [--threads ...] [--secs S] # A1/A2/A3
//! mkbench trace          [--threads N] [--secs S] [--keys K] [--json FILE]  # merged flight-recorder trace + obs snapshot as JSON
//! mkbench client         [--conns N] [--pipeline D] [--threads N] [--churn] [--require-coalescing] [--durability none|batch|fsync] [--json FILE]  # end-to-end jiffy-server loopback driver
//!
//! All subcommands accept `--dir ARTIFACTS`: an artifact root, created
//! and probed writable up front (exit 2 otherwise), under which
//! relative `--out`/`--json` paths — and `client`'s durability data —
//! are placed.
//! ```
//!
//! Observability hooks: every subcommand runs with the `jiffy-obs`
//! flight recorder live; a worker panic dumps the merged,
//! version-ordered event tail plus a metrics snapshot to stderr.
//! `MKBENCH_INJECT_PANIC=<n>` (reshard only) deliberately crashes one
//! worker after `n` ops in the mid-migration window, to exercise that
//! dump path end to end.
//!
//! Absolute numbers depend on the machine; the *shapes* (who wins, by
//! roughly what factor, where lock-based batching collapses) are the
//! reproduction targets — see EXPERIMENTS.md.

use std::sync::Arc;
use std::time::Duration;

/// Epoch-based reclamation frees garbage on whichever thread collects it;
/// under glibc malloc those cross-thread frees serialize on the owning
/// arena's lock and flatten write scalability (the JVM's GC gives the
/// paper this for free). mimalloc handles cross-thread frees without
/// arena locks — see DESIGN.md §6.
#[global_allocator]
static GLOBAL: mimalloc::MiMalloc = mimalloc::MiMalloc;

use mkbench::{
    indices_for_figure, make_index_u32, make_index_u64, run_scenario, IndexKind, Measurement, Row,
    RunConfig,
};
use workload::{figure_scenarios, BatchMode, KeyDist, KvShape, Scenario, ThreadMix};

struct Args {
    threads: Vec<usize>,
    secs: f64,
    warmup: f64,
    keys: u64,
    out: Option<String>,
    json: Option<String>,
    /// Raw `--indices` names; resolved against `shards` after all flags
    /// are parsed (so `--shards` works in any position).
    indices: Option<Vec<String>>,
    /// Default shard count for `sharded-*` indices named without `:<n>`.
    shards: usize,
    /// `--dir`: artifact root. Created + probed writable at parse time
    /// (exit 2 if not); relative `--out`/`--json` paths resolve under it.
    dir: Option<std::path::PathBuf>,
}

impl Args {
    fn meta(&self, label: impl Into<String>) -> mkbench::RunMeta {
        mkbench::RunMeta {
            label: label.into(),
            threads: self.threads.clone(),
            secs: self.secs,
            warmup: self.warmup,
            key_space: self.keys,
            created_unix: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
        }
    }

    /// The `--indices` lineup, resolved with the `--shards` default;
    /// malformed names are exit-2 usage errors.
    fn lineup(&self, default: impl FnOnce() -> Vec<IndexKind>) -> Vec<IndexKind> {
        match &self.indices {
            None => default(),
            Some(names) => names
                .iter()
                .map(|s| {
                    IndexKind::parse_with_default_shards(s, self.shards)
                        .unwrap_or_else(|msg| usage_error(&msg))
                })
                .collect(),
        }
    }

    fn write_reports(&self, label: &str, rows: &[Row]) {
        if let Some(out) = &self.out {
            let path = mkbench::resolve_under(self.dir.as_deref(), out);
            mkbench::write_csv(&path, rows).expect("write csv");
            eprintln!("wrote {}", path.display());
        }
        if let Some(json) = &self.json {
            let path = mkbench::resolve_under(self.dir.as_deref(), json);
            mkbench::write_json(&path, &self.meta(label), rows).expect("write json");
            eprintln!("wrote {}", path.display());
        }
    }
}

/// Parse `--dir`: the artifact root must exist (or be creatable) and be
/// writable *now* — a typo'd CI path is an exit-2 usage error before
/// any benchmark time is spent.
fn parse_artifact_dir(rest: &[String], i: &mut usize) -> std::path::PathBuf {
    let raw = flag_value(rest, i, "--dir");
    mkbench::prepare_artifact_dir(std::path::Path::new(raw)).unwrap_or_else(|msg| usage_error(&msg))
}

/// Next flag value, or a clean usage error if it is missing.
fn flag_value<'a>(rest: &'a [String], i: &mut usize, flag: &str) -> &'a str {
    *i += 1;
    rest.get(*i).unwrap_or_else(|| usage_error(&format!("{flag} requires a value"))).as_str()
}

fn parse_flags(rest: &[String]) -> Args {
    let mut args = Args {
        threads: vec![1, 2, 4],
        secs: 0.5,
        warmup: 0.75,
        keys: 100_000,
        out: None,
        json: None,
        indices: None,
        shards: mkbench::DEFAULT_SHARDS,
        dir: None,
    };
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--threads" => {
                args.threads = flag_value(rest, &mut i, "--threads")
                    .split(',')
                    .map(|s| {
                        s.parse()
                            .ok()
                            .filter(|t| *t >= 1)
                            .unwrap_or_else(|| usage_error("--threads takes e.g. 1,2,4"))
                    })
                    .collect();
            }
            "--secs" => {
                args.secs = flag_value(rest, &mut i, "--secs")
                    .parse()
                    .ok()
                    .filter(|s: &f64| s.is_finite() && *s > 0.0)
                    .unwrap_or_else(|| usage_error("--secs takes a positive float"));
            }
            "--warmup" => {
                args.warmup = flag_value(rest, &mut i, "--warmup")
                    .parse()
                    .ok()
                    .filter(|s: &f64| s.is_finite() && *s >= 0.0)
                    .unwrap_or_else(|| usage_error("--warmup takes a non-negative float"));
            }
            "--keys" => {
                args.keys = flag_value(rest, &mut i, "--keys")
                    .parse()
                    .ok()
                    .filter(|k| *k >= 2)
                    .unwrap_or_else(|| usage_error("--keys takes an integer >= 2"));
            }
            "--out" => {
                args.out = Some(flag_value(rest, &mut i, "--out").to_string());
            }
            "--dir" => {
                args.dir = Some(parse_artifact_dir(rest, &mut i));
            }
            "--json" => {
                args.json = Some(flag_value(rest, &mut i, "--json").to_string());
            }
            "--indices" => {
                args.indices = Some(
                    flag_value(rest, &mut i, "--indices").split(',').map(String::from).collect(),
                );
            }
            "--shards" => {
                args.shards = flag_value(rest, &mut i, "--shards")
                    .parse()
                    .ok()
                    .filter(|n| *n >= 1)
                    .unwrap_or_else(|| usage_error("--shards takes an integer >= 1"));
            }
            other => usage_error(&format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    args
}

fn cfg_for(args: &Args, threads: usize) -> RunConfig {
    RunConfig {
        threads,
        duration: Duration::from_secs_f64(args.secs),
        warmup: Duration::from_secs_f64(args.warmup),
        key_space: args.keys,
        prefill_density: 0.5,
        seed: 0xC0FFEE,
    }
}

/// Run one scenario cell for one index at one thread count. The
/// scenario's key distribution feeds the sharded kinds' split selection.
fn run_cell(shape: KvShape, kind: IndexKind, scenario: &Scenario, cfg: &RunConfig) -> Measurement {
    match shape {
        // 16 B keys / 100 B values: u64-derived keys with Arc'd payloads
        // (footnote 7: reference semantics keep copies payload-independent).
        KvShape::K16V100 => {
            let idx = make_index_u64::<std::sync::Arc<[u8]>>(kind, cfg.key_space, scenario.dist);
            run_scenario(idx, scenario, cfg)
        }
        KvShape::K4V4 => {
            let idx = make_index_u32::<u32>(kind, cfg.key_space, scenario.dist);
            run_scenario(idx, scenario, cfg)
        }
    }
}

fn cmd_figure(figure: u8, args: &Args) {
    let spec = figure_scenarios(figure)
        .unwrap_or_else(|| usage_error(&format!("no figure {figure} (the paper has 5-10)")));
    let mut rows: Vec<Row> = Vec::new();
    for scenario in spec.scenarios() {
        let batch_row = scenario.batch != BatchMode::Single;
        let lineup = args.lineup(|| indices_for_figure(spec.with_kiwi, batch_row));
        for kind in lineup {
            for &threads in &args.threads {
                let cfg = cfg_for(args, threads);
                let m = run_cell(spec.shape, kind, &scenario, &cfg);
                eprintln!(
                    "[fig{figure}] {} {} t={threads}: {:.3} Mops/s (upd {:.3})",
                    scenario.id,
                    kind.label(),
                    m.total_mops,
                    m.update_mops
                );
                rows.push(Row { scenario: scenario.id.clone(), index: kind.label(), threads, m });
            }
        }
    }
    println!("{}", mkbench::report::render_table(&rows));
    args.write_reports(&format!("figure{figure}"), &rows);
}

/// The paper's three op classes (update, lookup, scan) over a compact
/// index lineup — fast enough for CI smoke runs and perf-baseline
/// snapshots (`BENCH_*.json`), yet every class is actually exercised and
/// recorded (the seed's single update-lookup cell left scans unmeasured).
fn cmd_quick(args: &Args) {
    let scenarios = [
        (
            "update",
            Scenario::new(
                KvShape::K4V4,
                KeyDist::Uniform,
                ThreadMix::UPDATE_ONLY,
                0,
                BatchMode::Single,
            ),
        ),
        (
            "lookup",
            Scenario::new(
                KvShape::K4V4,
                KeyDist::Uniform,
                ThreadMix::UPDATE_LOOKUP,
                0,
                BatchMode::Single,
            ),
        ),
        (
            "scan",
            Scenario::new(
                KvShape::K4V4,
                KeyDist::Uniform,
                ThreadMix::MIXED,
                100,
                BatchMode::Single,
            ),
        ),
    ];
    // The sharded rows (2 and 8 shards) ride along by default: they are
    // unmatched-informational under `compare` against pre-sharding
    // baselines, so the BENCH_pr2.json gate is unaffected.
    let lineup = args.lineup(|| {
        vec![
            IndexKind::Jiffy,
            IndexKind::Cslm,
            IndexKind::CaAvl,
            IndexKind::Lfca,
            IndexKind::ShardedJiffy(2),
            IndexKind::ShardedJiffy(8),
        ]
    });
    let mut rows: Vec<Row> = Vec::new();
    for (class, scenario) in &scenarios {
        for kind in &lineup {
            for &threads in &args.threads {
                let cfg = cfg_for(args, threads);
                let m = run_cell(KvShape::K4V4, *kind, scenario, &cfg);
                let p99 = [m.update_lat, m.lookup_lat, m.scan_lat]
                    .iter()
                    .flatten()
                    .map(|l| l.p99_ns)
                    .max()
                    .unwrap_or(0);
                eprintln!(
                    "[quick/{class}] {} t={threads}: {:.3} Mops/s (upd {:.3}, read {:.3}, scan {:.3}; worst p99 {p99} ns)",
                    kind.label(),
                    m.total_mops,
                    m.update_mops,
                    m.read_mops,
                    m.scan_mops
                );
                rows.push(Row { scenario: scenario.id.clone(), index: kind.label(), threads, m });
            }
        }
    }
    println!("{}", mkbench::report::render_table(&rows));
    args.write_reports("quick", &rows);
}

/// Diff two `BENCH_*.json` reports; exit 1 on a throughput regression
/// beyond the tolerance (the CI perf-trajectory gate).
fn cmd_compare(argv: &[String]) {
    let (mut old_path, mut new_path) = (None, None);
    let mut tolerance = 10.0f64;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--tolerance" => {
                tolerance = flag_value(argv, &mut i, "--tolerance")
                    .parse()
                    .ok()
                    .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                    .unwrap_or_else(|| usage_error("--tolerance takes a non-negative percent"));
            }
            flag if flag.starts_with("--") => usage_error(&format!("unknown flag `{flag}`")),
            path if old_path.is_none() => old_path = Some(path.to_string()),
            path if new_path.is_none() => new_path = Some(path.to_string()),
            other => usage_error(&format!("unexpected compare argument `{other}`")),
        }
        i += 1;
    }
    let (Some(old_path), Some(new_path)) = (old_path, new_path) else {
        usage_error("compare takes OLD.json NEW.json [--tolerance PCT]")
    };
    let load = |path: &str| -> mkbench::BenchReport {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| usage_error(&format!("cannot read {path}: {e}")));
        mkbench::parse_report(&text)
            .unwrap_or_else(|e| usage_error(&format!("cannot parse {path}: {e}")))
    };
    let old = load(&old_path);
    let new = load(&new_path);
    eprintln!(
        "comparing {old_path} ({}, \"{}\") -> {new_path} ({}, \"{}\")",
        old.schema, old.label, new.schema, new.label
    );
    let outcome = mkbench::compare(&old, &new, tolerance);
    print!("{}", outcome.render());
    if !outcome.passed() {
        std::process::exit(1);
    }
}

/// Build a Jiffy-sharded map on one shared clock with either batch
/// coordination path: `two_phase == false` reconstructs the pre-PR-4
/// epoch-serialized coordinator (kept as the fallback for non-two-phase
/// shard types), `true` is the shipping pending-version protocol.
fn sharded_jiffy_batch_bench(
    shards: usize,
    key_space: u64,
    two_phase: bool,
) -> jiffy_shard::ShardedIndex<u64, u64, jiffy::JiffyMap<u64, u64, jiffy_shard::SharedClock>> {
    let clock: jiffy_shard::SharedClock = Arc::new(jiffy::DefaultClock::default());
    let router = jiffy_shard::Router::range_uniform(shards, key_space);
    let built: Vec<_> = (0..shards)
        .map(|_| {
            jiffy::JiffyMap::with_clock_and_config(
                Arc::clone(&clock),
                jiffy::JiffyConfig::default(),
            )
        })
        .collect();
    if two_phase {
        jiffy_shard::ShardedIndex::new_two_phase(built, router, clock)
    } else {
        jiffy_shard::ShardedIndex::new_coordinated(built, router, clock)
    }
}

/// The `cross-batch` contention scenario: every batch touches every
/// shard — the workload `CrossBatchEpoch` serialized — in two shapes.
/// *overlapping*: all writers hammer the same key per shard (max
/// conflict; two-phase pays for helping storms that the epoch's simple
/// mutual exclusion avoids). *disjoint*: each writer owns its keys
/// (zero logical conflict; the epoch still serializes these, two-phase
/// commits them independently — the shape this protocol exists for).
fn cmd_sharding_cross_batch(args: &Args) {
    use index_api::OrderedIndex as _;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    // Honor --shards; a cross-shard batch needs at least two shards to
    // exist, so 1 bumps to the minimum meaningful count (announced in
    // the header line below).
    let shards = args.shards.max(2);
    println!(
        "## cross-batch contention (all-shard batches, {shards} shards, epoch-serialized vs two-phase)"
    );
    for disjoint in [false, true] {
        println!("# {} writers", if disjoint { "disjoint-key" } else { "overlapping-key" });
        for &t in &args.threads {
            let mut rates = Vec::new();
            let mut line = format!("t={t:<2}");
            for (label, two_phase) in [("serialized", false), ("two-phase", true)] {
                let map = sharded_jiffy_batch_bench(shards, args.keys, two_phase);
                // The router splits [0, keys) into `shards` equal ranges
                // of exactly this width.
                let span = (args.keys / shards as u64).max(1);
                // One key per shard per writer, so every batch crosses
                // all shards; disjoint mode spreads writers inside each
                // shard's range. Offsets are clamped strictly inside the
                // span so the all-shard premise survives any --keys
                // value (disjointness additionally needs span > t + 2,
                // true at any realistic key-space size).
                let keys_for = |w: u64| -> Vec<u64> {
                    (0..shards as u64)
                        .map(|s| {
                            let offset = if disjoint {
                                1 + (w + 1) * span.saturating_sub(1) / (t as u64 + 2)
                            } else {
                                span / 2
                            };
                            s * span + offset.min(span - 1)
                        })
                        .collect()
                };
                for w in 0..t as u64 {
                    map.batch_update(workload_batch(&keys_for(w), 0));
                }
                let stop = AtomicBool::new(false);
                let commits = AtomicU64::new(0);
                std::thread::scope(|s| {
                    for w in 0..t as u64 {
                        let keys = keys_for(w);
                        let (map, stop, commits) = (&map, &stop, &commits);
                        s.spawn(move || {
                            mkbench::with_panic_context(
                                || format!("cross-batch {label}, writer {w}/{t}"),
                                || {
                                    let mut stamp = w + 1;
                                    while !stop.load(Ordering::Relaxed) {
                                        map.batch_update(workload_batch(&keys, stamp));
                                        commits.fetch_add(1, Ordering::Relaxed);
                                        stamp += t as u64;
                                    }
                                },
                            );
                        });
                    }
                    std::thread::sleep(Duration::from_secs_f64(args.secs));
                    stop.store(true, Ordering::Relaxed);
                });
                let rate = commits.load(Ordering::Relaxed) as f64 / args.secs;
                rates.push(rate);
                line.push_str(&format!("  {label}: {rate:>10.0} batches/s"));
            }
            line.push_str(&format!("  ({:.2}x)", rates[1] / rates[0].max(1e-9)));
            println!("{line}");
        }
    }
}

fn workload_batch(keys: &[u64], stamp: u64) -> index_api::Batch<u64, u64> {
    index_api::Batch::new(keys.iter().map(|k| index_api::BatchOp::Put(*k, stamp)).collect())
}

/// Where sharding wins and where skew kills it: the update-heavy
/// scenario over uniform vs shard-skewed traffic, unsharded Jiffy vs
/// `sharded-jiffy` at 2 and 8 shards. Splits are chosen per distribution
/// (`workload::shard_splits`), so the skewed run shows how much of the
/// damage distribution-aware splitting can undo.
fn cmd_sharding(args: &Args) {
    let threads = *args.threads.iter().max().unwrap();
    println!(
        "# sharding: update-only single ops, t={threads}, keys {} (skew: {}% of traffic to the bottom 1/{} of the key space)",
        args.keys,
        workload::HOT_TRAFFIC_PCT,
        workload::HOT_SPAN_DIV
    );
    let lineup = args
        .lineup(|| vec![IndexKind::Jiffy, IndexKind::ShardedJiffy(2), IndexKind::ShardedJiffy(8)]);
    for (label, dist) in [("uniform", KeyDist::Uniform), ("shard-skewed", KeyDist::HotRange)] {
        let scenario =
            Scenario::new(KvShape::K4V4, dist, ThreadMix::UPDATE_ONLY, 0, BatchMode::Single);
        println!("## {label} ({})", scenario.id);
        let mut baseline: Option<f64> = None;
        for kind in &lineup {
            let cfg = cfg_for(args, threads);
            let m = run_cell(KvShape::K4V4, *kind, &scenario, &cfg);
            let base = *baseline.get_or_insert(m.total_mops);
            println!(
                "{:<16} {:>8.3} Mops/s  ({:.2}x vs {})",
                kind.label(),
                m.total_mops,
                m.total_mops / base.max(1e-9),
                lineup[0].label()
            );
        }
    }
    cmd_sharding_cross_batch(args);
}

/// `mkbench reshard` — throughput through **live shard migrations**: the
/// paper's snapshot machinery (§3.4) plus the two-phase batch path
/// (§3.3.2–§3.3.3) lifted to whole shards (`jiffy_shard::ElasticJiffy`).
/// Three measured windows under the mixed workload (25% update / 50%
/// lookup / 25% scans of 100):
///
/// 1. steady state on the starting layout (`--shards`, min 2);
/// 2. a window with migrations continuously in flight — the widest shard
///    is split and immediately re-merged, in a loop;
/// 3. steady state after splitting every starting shard (2× the shards).
///
/// Each op (a scan counts as one) increments one relaxed counter, the
/// same cost in every window, so the three numbers are comparable.
fn cmd_reshard(args: &Args) {
    use index_api::OrderedIndex as _;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    if args.indices.is_some() {
        usage_error("reshard always runs elastic-jiffy; --indices is not accepted");
    }
    let threads = *args.threads.iter().max().unwrap();
    let shards = args.shards.max(2);
    let key_space = args.keys;
    // MKBENCH_INJECT_PANIC=<n>: deliberately panic the worker whose op
    // takes the mid-migration window's counter to exactly n, so CI can
    // smoke the dump-on-panic path (the panic-context wrapper prints the
    // merged flight-recorder tail before re-raising). An unparsable
    // value exits 2 rather than silently disarming the smoke.
    let inject_panic: Option<u64> = std::env::var("MKBENCH_INJECT_PANIC")
        .ok()
        .and_then(|v| mkbench::parse_inject_panic(&v).unwrap_or_else(|msg| usage_error(&msg)));
    let map = Arc::new(jiffy_shard::ElasticJiffy::<u64, u64>::with_router(
        jiffy_shard::Router::range_uniform(shards, key_space),
        jiffy::JiffyConfig::default(),
    ));
    for i in 0..key_space / 2 {
        map.put(workload::permute(i, key_space), i);
    }
    println!(
        "# reshard: elastic-jiffy, mixed workload (25u/50l/25s, scan 100), t={threads}, keys {key_space}, {shards} shards to start"
    );

    let measure = |label: &str, during: Option<&dyn Fn(&AtomicBool)>| -> f64 {
        let stop = AtomicBool::new(false);
        let ops = AtomicU64::new(0);
        // Arm the deliberate crash only while migrations are in flight,
        // so the dumped tail actually contains reshard lifecycle events.
        let armed = inject_panic.filter(|_| label.starts_with("mid-migration"));
        let plans = workload::ThreadMix::MIXED.plan(threads);
        std::thread::scope(|s| {
            for (tid, plan) in plans.iter().enumerate() {
                let map = Arc::clone(&map);
                let (stop, ops) = (&stop, &ops);
                let mut sched = workload::RoleSchedule::new(*plan);
                let window = label.to_string();
                s.spawn(move || {
                    // The rare reshard flake re-raises through
                    // `thread::scope` with its payload flattened; capture
                    // which window/worker died while it is still known.
                    let ctx = format!(
                        "reshard window '{window}', worker {tid}/{threads}, {} shards",
                        map.shard_count()
                    );
                    mkbench::with_panic_context(
                        || ctx.clone(),
                        || {
                            let mut gen = workload::KeyGen::new(
                                workload::KeyDist::Uniform,
                                key_space,
                                tid as u64 + 1,
                            );
                            while !stop.load(Ordering::Relaxed) {
                                let k = gen.next_key();
                                match sched.next_role() {
                                    workload::Role::Update => {
                                        if gen.next_raw() & 1 == 0 {
                                            map.put(k, k);
                                        } else {
                                            map.remove(&k);
                                        }
                                    }
                                    workload::Role::Lookup => {
                                        std::hint::black_box(map.get(&k));
                                    }
                                    workload::Role::Scan => {
                                        std::hint::black_box(map.scan_collect(&k, 100));
                                    }
                                }
                                let n = ops.fetch_add(1, Ordering::Relaxed) + 1;
                                // fetch_add hands out unique values, so
                                // exactly one worker crosses the trigger.
                                if armed == Some(n) {
                                    panic!("deliberate MKBENCH_INJECT_PANIC crash after {n} ops");
                                }
                            }
                        },
                    );
                });
            }
            let start = std::time::Instant::now();
            match during {
                None => std::thread::sleep(Duration::from_secs_f64(args.secs)),
                Some(f) => f(&stop),
            }
            let elapsed = start.elapsed();
            stop.store(true, Ordering::Relaxed);
            let mops = ops.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64() / 1e6;
            println!("{label:<34} {mops:>8.3} Mops/s  ({} shards now)", map.shard_count());
            mops
        })
    };

    let steady_before = measure(&format!("steady @ {shards} shards"), None);

    // Mid-migration window: split the widest shard at its midpoint and
    // merge it straight back, continuously, so a migration is live for
    // as much of the window as the cutovers allow.
    let migrations = AtomicU64::new(0);
    let churn = |_stop: &AtomicBool| {
        let deadline = std::time::Instant::now() + Duration::from_secs_f64(args.secs);
        while std::time::Instant::now() < deadline {
            let mut bounds = vec![0u64];
            bounds.extend(map.splits());
            bounds.push(key_space);
            let widest = bounds
                .windows(2)
                .enumerate()
                .max_by_key(|(_, w)| w[1] - w[0])
                .map(|(i, w)| (i, w[0] + (w[1] - w[0]) / 2))
                .expect("at least one shard");
            let (left, mid) = widest;
            if map.split_at(mid).is_ok() {
                map.merge_at(left).expect("the boundary just inserted can be removed");
                migrations.fetch_add(2, Ordering::Relaxed);
            }
        }
    };
    let mid = measure("mid-migration (split+merge loop)", Some(&churn));
    println!(
        "{:<34} {} migrations committed in the window",
        "",
        migrations.load(Ordering::Relaxed)
    );

    // Split every starting shard at its midpoint: the elastic end state.
    let mut bounds = vec![0u64];
    bounds.extend(map.splits());
    bounds.push(key_space);
    for w in bounds.windows(2) {
        let mid = w[0] + (w[1] - w[0]) / 2;
        if mid > w[0] {
            map.split_at(mid).unwrap_or_else(|e| usage_error(&format!("split at {mid}: {e}")));
        }
    }
    let steady_after = measure(&format!("steady @ {} shards", map.shard_count()), None);
    println!(
        "mid-migration/steady: {:.2}x   post-split/steady: {:.2}x",
        mid / steady_before.max(1e-9),
        steady_after / steady_before.max(1e-9)
    );
}

/// `mkbench trace` — exercise every traced subsystem briefly (single
/// and 10-op batched updates, lookups, scans, plus one live shard
/// split+merge on an elastic-jiffy map), then emit the merged,
/// version-ordered flight-recorder trace and the metrics snapshot as
/// JSON (schema `jiffy-obs-trace/v1`). `--json FILE` writes a file;
/// default is stdout. Build with `--features trace-verbose` to include
/// the high-frequency events (e.g. `BackoffRamp`).
fn cmd_trace(args: &Args) {
    use index_api::OrderedIndex as _;
    if args.indices.is_some() {
        usage_error("trace always runs elastic-jiffy; --indices is not accepted");
    }
    let threads = (*args.threads.iter().max().unwrap()).max(2);
    let key_space = args.keys;
    let map = Arc::new(jiffy_shard::ElasticJiffy::<u64, u64>::with_router(
        jiffy_shard::Router::range_uniform(2, key_space),
        jiffy::JiffyConfig::default(),
    ));
    for i in 0..key_space / 2 {
        map.put(workload::permute(i, key_space), i);
    }
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        for tid in 0..threads {
            let map = Arc::clone(&map);
            let stop = &stop;
            s.spawn(move || {
                let mut gen =
                    workload::KeyGen::new(workload::KeyDist::Uniform, key_space, tid as u64 + 1);
                let mut buf: Vec<index_api::BatchOp<u64, u64>> = Vec::new();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let k = gen.next_key();
                    match gen.next_raw() & 3 {
                        0 => {
                            buf.clear();
                            for _ in 0..10 {
                                let k = gen.next_key();
                                if gen.next_raw() & 1 == 0 {
                                    buf.push(index_api::BatchOp::Put(k, k));
                                } else {
                                    buf.push(index_api::BatchOp::Remove(k));
                                }
                            }
                            map.batch_update(index_api::Batch::new(std::mem::take(&mut buf)));
                        }
                        1 => {
                            map.put(k, k);
                        }
                        2 => {
                            std::hint::black_box(map.get(&k));
                        }
                        _ => {
                            std::hint::black_box(map.scan_collect(&k, 50));
                        }
                    }
                }
            });
        }
        // One live split and merge mid-run, so the trace holds the full
        // reshard lifecycle (Stage → GateQuiesce → Drain → Cutover)
        // interleaved with the per-shard events.
        let run = Duration::from_secs_f64(args.secs.max(0.3));
        std::thread::sleep(run / 3);
        let first_boundary = map.splits().first().copied().unwrap_or(key_space);
        let mid_key = first_boundary / 2;
        if mid_key > 0 && map.split_at(mid_key).is_ok() {
            map.merge_at(0).expect("the boundary just inserted can be removed");
        }
        std::thread::sleep(run / 3);
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });

    let trace = jiffy_obs::merged_trace();
    let mut snap = jiffy_obs::snapshot();
    snap.add_structure(map.obs_stats());
    let meta = args.meta("trace");
    let text = mkbench::report::render_trace_json("trace", meta.created_unix, &trace, &snap);
    match &args.json {
        Some(path) => {
            std::fs::write(path, &text).expect("write trace json");
            eprintln!("wrote {path} ({} events, {} recorder threads)", trace.len(), snap.threads);
        }
        None => print!("{text}"),
    }
}

/// `mkbench client` — end-to-end serving benchmark: an in-process
/// `jiffy-server` over loopback TCP, driven by pipelined nonblocking
/// connections; reports client-observed throughput and p50/p95/p99 per
/// op class plus the server's coalescing counters (see
/// `mkbench::client`). `--require-coalescing` makes the run itself a
/// gate: exit 1 unless the window provably coalesced puts into batches
/// (installed batches > 0 and mean ops per batch > 1).
fn cmd_client(argv: &[String]) {
    let mut cfg = mkbench::ClientDriverConfig::default();
    let mut json: Option<String> = None;
    let mut dir: Option<std::path::PathBuf> = None;
    let mut require_coalescing = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--conns" => {
                cfg.conns = flag_value(argv, &mut i, "--conns")
                    .parse()
                    .ok()
                    .filter(|n| *n >= 1)
                    .unwrap_or_else(|| usage_error("--conns takes an integer >= 1"));
            }
            "--pipeline" => {
                cfg.pipeline = flag_value(argv, &mut i, "--pipeline")
                    .parse()
                    .ok()
                    .filter(|n| *n >= 1)
                    .unwrap_or_else(|| usage_error("--pipeline takes an integer >= 1"));
            }
            "--threads" => {
                cfg.threads = flag_value(argv, &mut i, "--threads")
                    .parse()
                    .ok()
                    .filter(|n| *n >= 1)
                    .unwrap_or_else(|| usage_error("--threads takes a driver thread count >= 1"));
            }
            "--secs" => {
                cfg.secs = flag_value(argv, &mut i, "--secs")
                    .parse()
                    .ok()
                    .filter(|s: &f64| s.is_finite() && *s > 0.0)
                    .unwrap_or_else(|| usage_error("--secs takes a positive float"));
            }
            "--warmup" => {
                cfg.warmup = flag_value(argv, &mut i, "--warmup")
                    .parse()
                    .ok()
                    .filter(|s: &f64| s.is_finite() && *s >= 0.0)
                    .unwrap_or_else(|| usage_error("--warmup takes a non-negative float"));
            }
            "--keys" => {
                cfg.key_space = flag_value(argv, &mut i, "--keys")
                    .parse()
                    .ok()
                    .filter(|k| *k >= 2)
                    .unwrap_or_else(|| usage_error("--keys takes an integer >= 2"));
            }
            "--shards" => {
                cfg.shards = flag_value(argv, &mut i, "--shards")
                    .parse()
                    .ok()
                    .filter(|n| *n >= 1)
                    .unwrap_or_else(|| usage_error("--shards takes an integer >= 1"));
            }
            "--churn" => cfg.churn = true,
            "--require-coalescing" => require_coalescing = true,
            "--json" => json = Some(flag_value(argv, &mut i, "--json").to_string()),
            "--dir" => dir = Some(parse_artifact_dir(argv, &mut i)),
            "--durability" => {
                cfg.durability = flag_value(argv, &mut i, "--durability")
                    .parse()
                    .unwrap_or_else(|msg: String| usage_error(&msg));
            }
            other => usage_error(&format!("unknown client flag `{other}`")),
        }
        i += 1;
    }
    // WAL + checkpoints live under the artifact root when one is given
    // (the run's durability data is itself an inspectable artifact).
    if let Some(d) = &dir {
        cfg.data_dir = Some(d.join("durability"));
    }
    let m = mkbench::run_client_driver(&cfg);
    let sv = m.server.expect("client rows always carry the server column");
    let worst_p99 = [m.update_lat, m.lookup_lat, m.scan_lat]
        .iter()
        .flatten()
        .map(|l| l.p99_ns)
        .max()
        .unwrap_or(0);
    eprintln!(
        "[client] {} conns x {} deep{} (durability {:?}): {:.3} Mops/s (upd {:.3}, read {:.3}, scan {:.3}; worst p99 {worst_p99} ns)",
        cfg.conns,
        cfg.pipeline,
        if cfg.churn { ", reshard churn" } else { "" },
        cfg.durability,
        m.total_mops,
        m.update_mops,
        m.read_mops,
        m.scan_mops
    );
    eprintln!(
        "[client] server: {} batches installed, {} puts coalesced ({:.2} ops/batch), {} direct ops, {} txns",
        sv.installed_batches,
        sv.coalesced_puts,
        sv.ops_per_batch(),
        sv.direct_ops,
        sv.txns
    );
    let scenario =
        format!("client_c{}_p{}{}", cfg.conns, cfg.pipeline, if cfg.churn { "_churn" } else { "" });
    let rows = vec![Row { scenario, index: "jiffy-server".into(), threads: cfg.threads, m }];
    println!("{}", mkbench::report::render_table(&rows));
    if let Some(path) = &json {
        let meta = mkbench::RunMeta {
            label: "client".into(),
            threads: vec![cfg.threads],
            secs: cfg.secs,
            warmup: cfg.warmup,
            key_space: cfg.key_space,
            created_unix: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
        };
        let path = mkbench::resolve_under(dir.as_deref(), path);
        mkbench::write_json(&path, &meta, &rows).expect("write json");
        eprintln!("wrote {}", path.display());
    }
    if require_coalescing && !(sv.installed_batches > 0 && sv.ops_per_batch() > 1.0) {
        eprintln!(
            "mkbench client: coalescing NOT provably active (installed_batches {}, ops/batch {:.2})",
            sv.installed_batches,
            sv.ops_per_batch()
        );
        std::process::exit(1);
    }
}

/// §4.3 headline: large random batches, Jiffy vs the lock-based CA trees.
fn cmd_speedup(args: &Args) {
    let threads = *args.threads.iter().max().unwrap();
    let cfg = cfg_for(args, threads);
    let scenario = Scenario::new(
        KvShape::K4V4,
        KeyDist::Uniform,
        ThreadMix::UPDATE_ONLY,
        0,
        BatchMode::BatchRand { size: 100 },
    );
    let mut results = Vec::new();
    for kind in [IndexKind::Jiffy, IndexKind::CaAvl, IndexKind::CaSl] {
        let m = run_cell(KvShape::K4V4, kind, &scenario, &cfg);
        println!("{:<8} {:.3} Mops/s", kind.name(), m.total_mops);
        results.push((kind, m.total_mops));
    }
    let jiffy = results[0].1;
    for (kind, mops) in &results[1..] {
        println!(
            "speedup jiffy vs {}: {:.2}x  (paper: 4.9x-7.4x for random 100-op batches)",
            kind.name(),
            jiffy / mops.max(1e-9)
        );
    }
}

/// §4.3 revision-size observation: the autoscaler should choose small
/// revisions in write-only workloads and larger ones with many readers.
fn cmd_autoscale(args: &Args) {
    let secs = args.secs.max(2.0);
    for (label, mix) in [
        ("write-only", ThreadMix::UPDATE_ONLY),
        ("update-lookup (25/75)", ThreadMix::UPDATE_LOOKUP),
    ] {
        let map = Arc::new(jiffy::JiffyMap::<u64, u64>::new());
        for k in 0..args.keys / 2 {
            map.put(k * 2, k);
        }
        let stop = std::sync::atomic::AtomicBool::new(false);
        // plan(), not assign(): at small thread counts assign() would run
        // a 100% update workload under the "update-lookup (25/75)" label
        // (the printed comparison would then be write-only vs write-only
        // and say nothing about the autoscaler).
        let plans = mix.plan(*args.threads.iter().max().unwrap());
        std::thread::scope(|s| {
            for (tid, plan) in plans.iter().enumerate() {
                let map = Arc::clone(&map);
                let stop = &stop;
                let keys = args.keys;
                let mut sched = workload::RoleSchedule::new(*plan);
                s.spawn(move || {
                    let mut gen = workload::KeyGen::new(KeyDist::Uniform, keys, tid as u64 + 1);
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let k = gen.next_key();
                        match sched.next_role() {
                            workload::Role::Update => {
                                if gen.next_raw() & 1 == 0 {
                                    map.put(k, k);
                                } else {
                                    map.remove(&k);
                                }
                            }
                            _ => {
                                std::hint::black_box(map.get(&k));
                            }
                        }
                    }
                });
            }
            std::thread::sleep(Duration::from_secs_f64(secs));
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        let stats = map.debug_stats();
        println!(
            "{label:<24} nodes={:<6} entries={:<8} mean revision size = {:.1} (paper: ~35 write-only vs ~130 update-lookup)",
            stats.nodes, stats.entries, stats.mean_revision_size
        );
    }
}

fn cmd_ablation(which: &str, args: &Args) {
    match which {
        "clock" => {
            // A1: TSC-style clock vs shared atomic counter, update-only.
            let scenario = Scenario::new(
                KvShape::K4V4,
                KeyDist::Uniform,
                ThreadMix::UPDATE_ONLY,
                0,
                BatchMode::Single,
            );
            println!("# A1 clock ablation (update-only): versions via TSC vs shared counter");
            for &threads in &args.threads {
                let cfg = cfg_for(args, threads);
                let tsc = run_cell(KvShape::K4V4, IndexKind::Jiffy, &scenario, &cfg);
                let atomic = run_cell(KvShape::K4V4, IndexKind::JiffyAtomicClock, &scenario, &cfg);
                println!(
                    "t={threads}: jiffy(tsc) {:.3} Mops/s, jiffy(atomic-counter) {:.3} Mops/s ({:.2}x)",
                    tsc.total_mops,
                    atomic.total_mops,
                    tsc.total_mops / atomic.total_mops.max(1e-9)
                );
            }
        }
        "hash" => {
            // A2: in-revision hash index vs pure binary search, read-heavy.
            let scenario = Scenario::new(
                KvShape::K4V4,
                KeyDist::Uniform,
                ThreadMix::UPDATE_LOOKUP,
                0,
                BatchMode::Single,
            );
            println!("# A2 hash-index ablation (25% update / 75% lookup)");
            for &threads in &args.threads {
                let cfg = cfg_for(args, threads);
                let with = run_cell(KvShape::K4V4, IndexKind::Jiffy, &scenario, &cfg);
                let without = run_cell(KvShape::K4V4, IndexKind::JiffyNoHash, &scenario, &cfg);
                println!(
                    "t={threads}: hash-index {:.3} Mops/s, binary-search {:.3} Mops/s ({:.2}x)",
                    with.total_mops,
                    without.total_mops,
                    with.total_mops / without.total_mops.max(1e-9)
                );
            }
        }
        "revsize" => {
            // A3: fixed revision sizes vs the adaptive policy, two mixes.
            println!("# A3 revision-size ablation");
            for (label, mix, scan) in [
                ("update-only", ThreadMix::UPDATE_ONLY, 0usize),
                ("mixed+scans", ThreadMix::MIXED, 100),
            ] {
                let scenario =
                    Scenario::new(KvShape::K4V4, KeyDist::Uniform, mix, scan, BatchMode::Single);
                let threads = *args.threads.iter().max().unwrap();
                let cfg = cfg_for(args, threads);
                print!("{label:<12}");
                for kind in [
                    IndexKind::JiffyFixed(8),
                    IndexKind::JiffyFixed(64),
                    IndexKind::JiffyFixed(256),
                    IndexKind::Jiffy,
                ] {
                    let m = run_cell(KvShape::K4V4, kind, &scenario, &cfg);
                    let tag = match kind {
                        IndexKind::JiffyFixed(n) => format!("fixed{n}"),
                        _ => "adaptive".into(),
                    };
                    print!("  {tag}={:.3}", m.total_mops);
                }
                println!(" (Mops/s)");
            }
        }
        other => usage_error(&format!("unknown ablation `{other}` (clock|hash|revsize)")),
    }
}

/// Print a CLI usage error and exit 2 (no panic backtrace for typos).
fn usage_error(msg: &str) -> ! {
    eprintln!("mkbench: {msg}");
    std::process::exit(2);
}

fn main() {
    // With the `audit-sched` feature, AUDIT_SCHED_SEED=<n> runs the
    // whole benchmark under the seeded race explorer (perturbed, NOT
    // representative of performance — a correctness stress mode).
    #[cfg(feature = "audit-sched")]
    let _explorer = jiffy_audit::sched::config_from_env().map(|cfg| {
        eprintln!("mkbench: audit-sched explorer installed (seed {})", cfg.seed);
        // A failure found by the explorer is worthless without the seed
        // *and* the interleaving: dump the flight-recorder tail with the
        // seed attached before the default hook prints the backtrace.
        let seed = cfg.seed;
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            jiffy_obs::dump_on_failure(&format!("audit-sched explorer failure (seed {seed})"), 64);
            prev(info);
        }));
        jiffy_audit::sched::install_explorer(cfg)
    });
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprintln!(
            "usage: mkbench <figure N|quick|compare OLD NEW|sharding|reshard|speedup|autoscale|ablation WHICH|trace|client> [flags]"
        );
        eprintln!("flags: --threads 1,2,4  --secs S  --warmup S  --keys K  --indices a,b,c");
        eprintln!("       --shards N (default for sharded-* indices named without :<n>)");
        eprintln!("       --out results.csv  --json BENCH_label.json  --tolerance PCT (compare)");
        eprintln!(
            "       --dir ARTIFACTS (root for relative --out/--json; created, must be writable)"
        );
        eprintln!("       --conns N  --pipeline D  --churn  --require-coalescing  --durability none|batch|fsync (client)");
        std::process::exit(2);
    };
    match cmd.as_str() {
        "quick" => {
            let args = parse_flags(&argv[1..]);
            cmd_quick(&args);
        }
        "sharding" => {
            let args = parse_flags(&argv[1..]);
            cmd_sharding(&args);
        }
        "reshard" => {
            let args = parse_flags(&argv[1..]);
            cmd_reshard(&args);
        }
        "trace" => {
            let args = parse_flags(&argv[1..]);
            cmd_trace(&args);
        }
        "compare" => {
            cmd_compare(&argv[1..]);
        }
        "client" => {
            cmd_client(&argv[1..]);
        }
        "figure" => {
            let n: u8 = argv
                .get(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| usage_error("`figure` takes a figure number 5-10"));
            let args = parse_flags(&argv[2..]);
            cmd_figure(n, &args);
        }
        "speedup" => {
            let args = parse_flags(&argv[1..]);
            cmd_speedup(&args);
        }
        "autoscale" => {
            let args = parse_flags(&argv[1..]);
            cmd_autoscale(&args);
        }
        "ablation" => {
            let which = argv.get(1).expect("ablation name").clone();
            let args = parse_flags(&argv[2..]);
            cmd_ablation(&which, &args);
        }
        other => {
            eprintln!("unknown command {other}");
            std::process::exit(2);
        }
    }
}
