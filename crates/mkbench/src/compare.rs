//! `mkbench compare OLD.json NEW.json [--tolerance PCT]` — diff two
//! `BENCH_*.json` reports and fail on throughput regressions.
//!
//! This is the automated perf-trajectory gate: rows are matched by
//! (scenario, index, threads); a matched row regresses when its
//! `total_mops` drops more than the tolerance below the baseline. Per-role
//! throughput and p99 latency deltas are reported too, but informationally
//! — role columns are noisier (few threads per role) and latency tails
//! noisier still, so only the headline throughput gates. Both v1 and v2
//! reports load; the gate uses only columns both schemas carry.

use std::fmt::Write as _;

use crate::json::{self, Value};

/// One report row's comparable columns.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRow {
    pub scenario: String,
    pub index: String,
    pub threads: u64,
    pub total_mops: f64,
    pub update_mops: f64,
    pub read_mops: f64,
    pub scan_mops: f64,
    /// v2 only: per-role p99 latency, `(role, ns)`.
    pub p99_ns: Vec<(String, u64)>,
}

impl BenchRow {
    fn key(&self) -> String {
        format!("{} / {} / t={}", self.scenario, self.index, self.threads)
    }
}

/// A loaded report: schema tag, label, rows.
#[derive(Clone, Debug)]
pub struct BenchReport {
    pub schema: String,
    pub label: String,
    pub rows: Vec<BenchRow>,
}

fn f64_field(row: &Value, key: &str) -> Result<f64, String> {
    row.get(key).and_then(Value::as_f64).ok_or_else(|| format!("row missing numeric field `{key}`"))
}

/// Parse a report from JSON text (schema `jiffy-mkbench/v1` or `/v2`).
pub fn parse_report(text: &str) -> Result<BenchReport, String> {
    let doc = json::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or_else(|| "report has no `schema` field".to_string())?;
    if !schema.starts_with("jiffy-mkbench/") {
        return Err(format!("unknown schema `{schema}`"));
    }
    let label = doc.get("label").and_then(Value::as_str).unwrap_or("?").to_string();
    let raw_rows = doc
        .get("rows")
        .and_then(Value::as_arr)
        .ok_or_else(|| "report has no `rows`".to_string())?;
    let mut rows = Vec::with_capacity(raw_rows.len());
    for raw in raw_rows {
        let mut p99_ns = Vec::new();
        if let Some(Value::Obj(members)) = raw.get("latency_ns") {
            for (role, v) in members {
                if let Some(p99) = v.get("p99").and_then(Value::as_f64) {
                    p99_ns.push((role.clone(), p99 as u64));
                }
            }
        }
        rows.push(BenchRow {
            scenario: raw
                .get("scenario")
                .and_then(Value::as_str)
                .ok_or_else(|| "row missing `scenario`".to_string())?
                .to_string(),
            index: raw
                .get("index")
                .and_then(Value::as_str)
                .ok_or_else(|| "row missing `index`".to_string())?
                .to_string(),
            threads: f64_field(raw, "threads")? as u64,
            total_mops: f64_field(raw, "total_mops")?,
            update_mops: f64_field(raw, "update_mops")?,
            read_mops: f64_field(raw, "read_mops")?,
            scan_mops: f64_field(raw, "scan_mops")?,
            p99_ns,
        });
    }
    Ok(BenchReport { schema: schema.to_string(), label, rows })
}

/// Outcome of comparing two reports.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Rows present in both reports.
    pub compared: usize,
    /// Rows in the baseline report (the coverage the gate must keep).
    pub baseline_rows: usize,
    /// Gating failures: total_mops dropped beyond tolerance.
    pub regressions: Vec<String>,
    /// total_mops improved beyond tolerance (trajectory going up).
    pub improvements: Vec<String>,
    /// Informational: per-role/latency drift, unmatched rows.
    pub notes: Vec<String>,
    pub tolerance_pct: f64,
}

impl Comparison {
    /// The gate: no regressions beyond tolerance — and every baseline row
    /// actually compared. A baseline row with no counterpart in the new
    /// report means coverage shrank: a renamed index/scenario or a
    /// narrowed thread grid would otherwise let a regression ship inside
    /// the rows that silently stopped being compared. (Zero matched rows
    /// — fully disjoint runs — is the degenerate case of the same hole.)
    /// Rows that exist only in the *new* report are fine: that is how new
    /// scenarios ride along informationally until they are re-baselined.
    pub fn passed(&self) -> bool {
        self.compared > 0 && self.compared >= self.baseline_rows && self.regressions.is_empty()
    }

    /// Human-readable diff, one finding per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "compared {} of {} baseline rows (tolerance {:.0}%): {} regression(s), {} improvement(s)",
            self.compared,
            self.baseline_rows,
            self.tolerance_pct,
            self.regressions.len(),
            self.improvements.len()
        );
        for r in &self.regressions {
            let _ = writeln!(out, "REGRESSION  {r}");
        }
        for i in &self.improvements {
            let _ = writeln!(out, "improved    {i}");
        }
        for n in &self.notes {
            let _ = writeln!(out, "note        {n}");
        }
        if self.compared == 0 {
            let _ = writeln!(out, "no rows matched: reports describe disjoint runs");
        } else if self.compared < self.baseline_rows {
            let _ = writeln!(
                out,
                "coverage shrank: {} baseline row(s) have no counterpart in the new report",
                self.baseline_rows - self.compared
            );
        }
        let _ = writeln!(out, "{}", if self.passed() { "PASS" } else { "FAIL" });
        out
    }
}

fn pct(old: f64, new: f64) -> f64 {
    if old <= 0.0 {
        return 0.0;
    }
    (new - old) / old * 100.0
}

/// Compare `new` against the `old` baseline with a symmetric tolerance in
/// percent. Only `total_mops` gates; everything else is informational.
pub fn compare(old: &BenchReport, new: &BenchReport, tolerance_pct: f64) -> Comparison {
    let mut out = Comparison { tolerance_pct, baseline_rows: old.rows.len(), ..Default::default() };
    // Noise floor for the informational per-role columns: a role doing
    // almost nothing (e.g. 0.05 Mops/s of updates among 75% lookups)
    // swings wildly run to run and would drown the report.
    const ROLE_FLOOR_MOPS: f64 = 0.05;
    for o in &old.rows {
        let Some(n) = new
            .rows
            .iter()
            .find(|n| n.scenario == o.scenario && n.index == o.index && n.threads == o.threads)
        else {
            out.notes.push(format!("{}: row missing from new report", o.key()));
            continue;
        };
        out.compared += 1;
        let delta = pct(o.total_mops, n.total_mops);
        let line = format!(
            "{}: total {:.3} -> {:.3} Mops/s ({:+.1}%)",
            o.key(),
            o.total_mops,
            n.total_mops,
            delta
        );
        if delta < -tolerance_pct {
            out.regressions.push(line);
        } else if delta > tolerance_pct {
            out.improvements.push(line);
        }
        for (role, old_v, new_v) in [
            ("update", o.update_mops, n.update_mops),
            ("read", o.read_mops, n.read_mops),
            ("scan", o.scan_mops, n.scan_mops),
        ] {
            if old_v > ROLE_FLOOR_MOPS && pct(old_v, new_v) < -tolerance_pct {
                out.notes.push(format!(
                    "{}: {role} {:.3} -> {:.3} Mops/s ({:+.1}%)",
                    o.key(),
                    old_v,
                    new_v,
                    pct(old_v, new_v)
                ));
            }
        }
        for (role, old_p99) in &o.p99_ns {
            if let Some((_, new_p99)) = n.p99_ns.iter().find(|(r, _)| r == role) {
                if pct(*old_p99 as f64, *new_p99 as f64) > tolerance_pct {
                    out.notes.push(format!(
                        "{}: {role} p99 {} -> {} ns ({:+.1}%)",
                        o.key(),
                        old_p99,
                        new_p99,
                        pct(*old_p99 as f64, *new_p99 as f64)
                    ));
                }
            }
        }
    }
    for n in &new.rows {
        let matched = old
            .rows
            .iter()
            .any(|o| o.scenario == n.scenario && o.index == n.index && o.threads == n.threads);
        if !matched {
            out.notes.push(format!("{}: new row (no baseline)", n.key()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rows: &[(&str, &str, u64, f64)]) -> BenchReport {
        BenchReport {
            schema: "jiffy-mkbench/v2".into(),
            label: "test".into(),
            rows: rows
                .iter()
                .map(|(s, i, t, mops)| BenchRow {
                    scenario: s.to_string(),
                    index: i.to_string(),
                    threads: *t,
                    total_mops: *mops,
                    update_mops: *mops / 2.0,
                    read_mops: *mops / 2.0,
                    scan_mops: 0.0,
                    p99_ns: vec![],
                })
                .collect(),
        }
    }

    #[test]
    fn identical_reports_pass() {
        let a = report(&[("s", "jiffy", 1, 1.0), ("s", "jiffy", 2, 2.0)]);
        let c = compare(&a, &a, 10.0);
        assert!(c.passed());
        assert_eq!(c.compared, 2);
        assert!(c.regressions.is_empty() && c.improvements.is_empty());
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let old = report(&[("s", "jiffy", 1, 1.0)]);
        let new = report(&[("s", "jiffy", 1, 0.8)]);
        let c = compare(&old, &new, 10.0);
        assert!(!c.passed());
        assert_eq!(c.regressions.len(), 1);
        assert!(c.regressions[0].contains("-20.0%"), "{:?}", c.regressions);
        // The same drop inside tolerance passes.
        let c = compare(&old, &new, 25.0);
        assert!(c.passed());
    }

    #[test]
    fn improvement_is_reported_not_failed() {
        let old = report(&[("s", "jiffy", 1, 1.0)]);
        let new = report(&[("s", "jiffy", 1, 2.0)]);
        let c = compare(&old, &new, 10.0);
        assert!(c.passed());
        assert_eq!(c.improvements.len(), 1);
    }

    #[test]
    fn new_only_rows_are_notes_not_failures() {
        // Rows that exist only in the new report (a new scenario/index
        // riding along before re-baselining) stay informational.
        let old = report(&[("s", "jiffy", 1, 1.0)]);
        let new = report(&[("s", "jiffy", 1, 1.0), ("s", "lfca", 1, 1.0)]);
        let c = compare(&old, &new, 10.0);
        assert!(c.passed());
        assert_eq!(c.compared, 1);
        assert_eq!(c.baseline_rows, 1);
        assert_eq!(c.notes.len(), 1, "{:?}", c.notes);
        assert!(c.notes[0].contains("new row"), "{:?}", c.notes);
    }

    #[test]
    fn missing_baseline_rows_fail_the_gate() {
        // A label rename leaves the renamed row unmatched on *both*
        // sides; the surviving match must not carry the gate alone —
        // coverage dropped below the baseline's row count.
        let old = report(&[("s", "jiffy", 1, 1.0), ("s", "cslm", 1, 1.0)]);
        let new = report(&[("s", "jiffy", 1, 1.0), ("s", "lfca", 1, 1.0)]);
        let c = compare(&old, &new, 10.0);
        assert_eq!(c.compared, 1);
        assert_eq!(c.baseline_rows, 2);
        assert!(!c.passed(), "shrunken coverage must fail the gate");
        assert!(c.render().contains("coverage shrank"), "{}", c.render());
        assert_eq!(c.notes.len(), 2, "{:?}", c.notes);
    }

    #[test]
    fn zero_matched_rows_fails_the_gate() {
        // A renamed index (or scenario/thread-grid change) must not let
        // the gate pass vacuously — 0 compared rows gates nothing.
        let old = report(&[("s", "ca-avl", 1, 1.0)]);
        let new = report(&[("s", "caavl", 1, 0.5)]);
        let c = compare(&old, &new, 10.0);
        assert_eq!(c.compared, 0);
        assert!(!c.passed(), "vacuous comparison must fail");
        assert!(c.render().contains("disjoint"), "{}", c.render());
    }

    #[test]
    fn parses_v1_and_v2_reports() {
        // v1: the committed BENCH_seed.json shape.
        let v1 = r#"{
          "schema": "jiffy-mkbench/v1", "label": "quick", "created_unix": 0,
          "config": { "threads": [1], "secs": 0.5, "warmup": 0.5, "key_space": 1000 },
          "rows": [
            { "scenario": "s", "index": "jiffy", "threads": 1,
              "total_mops": 1.0, "update_mops": 1.0, "read_mops": 0.0, "scan_mops": 0.0 }
          ]
        }"#;
        let r1 = parse_report(v1).unwrap();
        assert_eq!(r1.schema, "jiffy-mkbench/v1");
        assert_eq!(r1.rows.len(), 1);
        assert!(r1.rows[0].p99_ns.is_empty());

        let v2 = r#"{
          "schema": "jiffy-mkbench/v2", "label": "quick", "created_unix": 0,
          "config": { "threads": [1], "secs": 0.5, "warmup": 0.5, "key_space": 1000 },
          "rows": [
            { "scenario": "s", "index": "jiffy", "threads": 1,
              "total_mops": 0.5, "update_mops": 0.2, "read_mops": 0.3, "scan_mops": 0.0,
              "effective_mix": { "update": 0.25, "lookup": 0.75, "scan": 0.0 },
              "latency_ns": { "update": { "p50": 10, "p95": 20, "p99": 30, "max": 40, "samples": 9 } } }
          ]
        }"#;
        let r2 = parse_report(v2).unwrap();
        assert_eq!(r2.rows[0].p99_ns, vec![("update".to_string(), 30)]);

        // v1 baseline vs v2 current compares fine and catches the drop.
        let c = compare(&r1, &r2, 10.0);
        assert_eq!(c.compared, 1);
        assert!(!c.passed());
    }

    #[test]
    fn p99_latency_drift_is_informational() {
        let mut old = report(&[("s", "jiffy", 1, 1.0)]);
        let mut new = report(&[("s", "jiffy", 1, 1.0)]);
        old.rows[0].p99_ns = vec![("lookup".into(), 100)];
        new.rows[0].p99_ns = vec![("lookup".into(), 500)];
        let c = compare(&old, &new, 10.0);
        assert!(c.passed(), "latency drift must not gate");
        assert!(c.notes.iter().any(|n| n.contains("p99")), "{:?}", c.notes);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_report("{}").is_err());
        assert!(parse_report("not json").is_err());
        assert!(parse_report(r#"{"schema": "other/v1", "rows": []}"#).is_err());
    }
}
