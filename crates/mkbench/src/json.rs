//! A minimal JSON reader for `BENCH_*.json` reports (hand-rolled: the
//! build environment vendors no serde). Full JSON grammar, recursive
//! descent, error messages with byte offsets — enough to load any v1/v2
//! report (and reject a truncated one) for `mkbench compare`.

/// A parsed JSON value. Object keys keep insertion order; duplicate keys
/// resolve to the last occurrence via [`Value::get`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (last duplicate wins); `None` on
    /// non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Value::Num).map_err(|_| self.err(&format!("bad number `{text}`")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: our reports are ASCII, but
                            // decode them anyway for full-JSON inputs. A
                            // high surrogate must be followed by a low
                            // one — anything else is a malformed pair
                            // (unchecked subtraction here would panic in
                            // debug and wrap to a wrong char in release).
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("bad surrogate pair in \\u escape"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("bad \\u escape"))?);
                        }
                        other => return Err(self.err(&format!("bad escape `\\{}`", other as char))),
                    }
                }
                Some(b) if b < 0x80 => {
                    // ASCII fast path — the bulk of every report.
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Decode one multi-byte character from a 4-byte
                    // window (not the whole tail: re-validating the
                    // remaining input per character is quadratic).
                    // `parse` takes &str, so `pos` sits on a char
                    // boundary and the window holds a complete char;
                    // only a following char may be truncated by it.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let chunk = &self.bytes[self.pos..end];
                    let valid = match std::str::from_utf8(chunk) {
                        Ok(s) => s,
                        Err(e) => std::str::from_utf8(&chunk[..e.valid_up_to()]).unwrap(),
                    };
                    let ch = valid.chars().next().ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-1.5e3").unwrap(), Value::Num(-1500.0));
        assert_eq!(parse("\"a\\nb\\u0041\"").unwrap(), Value::Str("a\nbA".into()));
        // Raw multi-byte UTF-8 (2-, 3- and 4-byte) through the windowed
        // decoder, including adjacent multi-byte chars at end-of-input.
        assert_eq!(parse("\"é中🦀\"").unwrap(), Value::Str("é中🦀".into()));
        assert_eq!(parse("\"🦀🦀\"").unwrap(), Value::Str("🦀🦀".into()));
    }

    #[test]
    fn nested_structure_and_accessors() {
        let v = parse(r#"{ "rows": [ { "threads": 2, "mops": 1.25, "idx": "jiffy" } ] }"#).unwrap();
        let rows = v.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("threads").unwrap().as_f64(), Some(2.0));
        assert_eq!(rows[0].get("idx").unwrap().as_str(), Some("jiffy"));
        assert_eq!(rows[0].get("missing"), None);
    }

    #[test]
    fn roundtrips_a_rendered_report() {
        let meta = crate::report::RunMeta {
            label: "smoke \"quoted\"".into(),
            threads: vec![1, 2],
            secs: 0.5,
            warmup: 0.25,
            key_space: 1000,
            created_unix: 42,
        };
        let m = crate::report::Measurement {
            total_mops: 1.5,
            update_lat: Some(crate::report::LatencySummary {
                p50_ns: 10,
                p95_ns: 20,
                p99_ns: 30,
                max_ns: 40,
                samples: 5,
            }),
            ..Default::default()
        };
        let rows =
            vec![crate::report::Row { scenario: "s".into(), index: "jiffy".into(), threads: 1, m }];
        let text = crate::report::render_json(&meta, &rows);
        let v = parse(&text).expect("rendered report must parse");
        assert_eq!(v.get("schema").unwrap().as_str(), Some("jiffy-mkbench/v2"));
        let row = &v.get("rows").unwrap().as_arr().unwrap()[0];
        assert_eq!(row.get("total_mops").unwrap().as_f64(), Some(1.5));
        let lat = row.get("latency_ns").unwrap().get("update").unwrap();
        assert_eq!(lat.get("p99").unwrap().as_f64(), Some(30.0));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\": }", "1 2", "\"unterminated", "{\"a\":1,}"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn surrogate_pairs() {
        // Valid pair decodes; a high surrogate followed by anything but a
        // low surrogate is an error (not a panic, not a garbage char).
        assert_eq!(parse("\"\\uD83D\\uDE00\"").unwrap(), Value::Str("\u{1F600}".into()));
        for bad in ["\"\\uD800\\u0041\"", "\"\\uD800\"", "\"\\uD800\\uD800\"", "\"\\uDC00\""] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = parse(r#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(2.0));
    }
}
