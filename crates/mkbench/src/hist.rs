//! Log-bucketed latency histogram, re-exported from `jiffy-obs`.
//!
//! The histogram was born here and lifted into `jiffy-obs` so that every
//! subsystem (not just the benchmark harness) can feed latency
//! distributions into an `ObsSnapshot`. The type and its tests live in
//! `jiffy_obs::hist`; this module keeps the historical `mkbench::hist`
//! path working unchanged.

pub use jiffy_obs::hist::*;
