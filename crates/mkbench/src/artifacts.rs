//! `--dir` artifact-path discipline: every mkbench subcommand that
//! writes files (`--json`, `--out`, durability data) can be pointed at
//! one artifact root. The root is created if missing and **probed for
//! writability up front**, so a CI job with a typo'd or read-only
//! output path dies with a clean exit-2 usage error before any
//! benchmark time is spent — not with a panic after the measured
//! window.

use std::fs;
use std::path::{Path, PathBuf};

/// Create `dir` if missing and prove it is writable by creating and
/// removing a probe file. Returns the root on success; the `Err`
/// message is meant to go straight to `usage_error` (exit 2).
pub fn prepare_artifact_dir(dir: &Path) -> Result<PathBuf, String> {
    fs::create_dir_all(dir).map_err(|e| format!("--dir {}: cannot create: {e}", dir.display()))?;
    let probe = dir.join(format!(".mkbench-probe-{}", std::process::id()));
    fs::write(&probe, b"probe")
        .map_err(|e| format!("--dir {}: not writable: {e}", dir.display()))?;
    let _ = fs::remove_file(&probe);
    Ok(dir.to_path_buf())
}

/// Resolve an artifact path against the `--dir` root: relative paths
/// land under the root, absolute paths (and paths with no root set)
/// pass through untouched.
pub fn resolve_under(root: Option<&Path>, path: &str) -> PathBuf {
    match root {
        Some(root) if Path::new(path).is_relative() => root.join(path),
        _ => PathBuf::from(path),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mkbench-artifacts-{}-{name}", std::process::id()))
    }

    #[test]
    fn prepare_creates_missing_dirs_and_probes() {
        let dir = tmp("fresh").join("nested/deep");
        let _ = fs::remove_dir_all(tmp("fresh"));
        let got = prepare_artifact_dir(&dir).expect("fresh nested dir");
        assert_eq!(got, dir);
        assert!(dir.is_dir());
        // No probe file left behind.
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 0);
        let _ = fs::remove_dir_all(tmp("fresh"));
    }

    #[test]
    fn prepare_rejects_a_path_through_a_file() {
        // A parent component that is a regular file can never become a
        // directory — the deterministic "unwritable" case (permission
        // bits are unreliable when tests run as root).
        let file = tmp("blocker");
        fs::write(&file, b"x").unwrap();
        let err = prepare_artifact_dir(&file.join("sub")).unwrap_err();
        assert!(err.contains("cannot create"), "got: {err}");
        let _ = fs::remove_file(&file);
    }

    #[test]
    fn resolve_respects_absolute_and_missing_root() {
        let root = PathBuf::from("/artifacts");
        assert_eq!(resolve_under(Some(&root), "a/b.json"), PathBuf::from("/artifacts/a/b.json"));
        assert_eq!(resolve_under(Some(&root), "/abs/b.json"), PathBuf::from("/abs/b.json"));
        assert_eq!(resolve_under(None, "a/b.json"), PathBuf::from("a/b.json"));
    }
}
