//! Index factory: build any of the paper's indices behind the common
//! [`OrderedIndex`] trait, for either key shape.

use std::sync::Arc;

use baselines::catree::{AvlContainer, ImmContainer, SkipContainer};
use baselines::snaptree::RangePartitioner;
use baselines::{CaTree, Cslm, KaryTree, Kiwi, LfcaTree, SnapTree};
use index_api::OrderedIndex;
use jiffy::{AtomicClock, JiffyConfig, JiffyMap};
use jiffy_shard::{Router, ShardedIndex, ShardedJiffy};
use workload::{KeyDist, Value};

/// Default shard count for `sharded-*` kinds parsed without an explicit
/// `:<n>` suffix (overridable with mkbench's `--shards`).
pub const DEFAULT_SHARDS: usize = 4;

/// Every index of the paper's evaluation (plus the Jiffy ablation
/// variants used by the A1/A2 experiments and the sharded wrappers).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexKind {
    Jiffy,
    /// Jiffy with the atomic-counter clock (ablation A1, §3.2 fn. 3).
    JiffyAtomicClock,
    /// Jiffy without the in-revision hash index (ablation A2, §3.3.5).
    JiffyNoHash,
    /// Jiffy with a fixed revision size (ablation A3, §3.3.6).
    JiffyFixed(usize),
    /// `jiffy-shard`: N coordinated Jiffy shards, range-partitioned with
    /// splits drawn from the scenario's key distribution.
    ShardedJiffy(usize),
    /// `jiffy-shard` over CSLM shards — the honest weak-flag wrapper.
    ShardedCslm(usize),
    SnapTree,
    KAry,
    CaAvl,
    CaSl,
    CaImm,
    Lfca,
    Kiwi,
    Cslm,
}

impl IndexKind {
    pub fn name(&self) -> &'static str {
        match self {
            IndexKind::Jiffy => "jiffy",
            IndexKind::JiffyAtomicClock => "jiffy-atomic",
            IndexKind::JiffyNoHash => "jiffy-nohash",
            IndexKind::JiffyFixed(_) => "jiffy-fixed",
            IndexKind::ShardedJiffy(_) => "sharded-jiffy",
            IndexKind::ShardedCslm(_) => "sharded-cslm",
            IndexKind::SnapTree => "snaptree",
            IndexKind::KAry => "k-ary",
            IndexKind::CaAvl => "ca-avl",
            IndexKind::CaSl => "ca-sl",
            IndexKind::CaImm => "ca-imm",
            IndexKind::Lfca => "lfca",
            IndexKind::Kiwi => "kiwi",
            IndexKind::Cslm => "cslm",
        }
    }

    /// Report-row label: [`name`](IndexKind::name) plus the parameter for
    /// parameterized kinds (`sharded-jiffy:8`, `jiffy-fixed:64`), so rows
    /// for different configurations stay distinguishable in tables and
    /// `compare` matching.
    pub fn label(&self) -> String {
        match self {
            IndexKind::JiffyFixed(n) => format!("jiffy-fixed:{n}"),
            IndexKind::ShardedJiffy(n) => format!("sharded-jiffy:{n}"),
            IndexKind::ShardedCslm(n) => format!("sharded-cslm:{n}"),
            other => other.name().to_string(),
        }
    }

    /// Parse a CLI index name. Parameterized kinds take a `:<n>` suffix
    /// (`jiffy-fixed:<n>` requires one; `sharded-jiffy`/`sharded-cslm`
    /// default to `default_shards` without one). Returns a user-facing
    /// message on malformed input — callers turn it into the exit-2
    /// usage error.
    pub fn parse_with_default_shards(s: &str, default_shards: usize) -> Result<IndexKind, String> {
        let parse_param =
            |spec: &str, what: &str, default: Option<usize>| match spec.strip_prefix(':') {
                None if spec.is_empty() => {
                    default.ok_or_else(|| format!("`{s}` needs a {what}: use `{s}:<n>`"))
                }
                // Legacy spelling without the colon (`jiffy-fixed64`).
                None => {
                    spec.parse().ok().filter(|n| *n >= 1).ok_or_else(|| {
                        format!("`{s}`: {what} must be an integer >= 1, got `{spec}`")
                    })
                }
                Some(digits) => digits.parse().ok().filter(|n| *n >= 1).ok_or_else(|| {
                    format!("`{s}`: {what} must be an integer >= 1, got `{digits}`")
                }),
            };
        Ok(match s {
            "jiffy" => IndexKind::Jiffy,
            "jiffy-atomic" => IndexKind::JiffyAtomicClock,
            "jiffy-nohash" => IndexKind::JiffyNoHash,
            "snaptree" => IndexKind::SnapTree,
            "k-ary" | "kary" => IndexKind::KAry,
            "ca-avl" => IndexKind::CaAvl,
            "ca-sl" => IndexKind::CaSl,
            "ca-imm" => IndexKind::CaImm,
            "lfca" => IndexKind::Lfca,
            "kiwi" => IndexKind::Kiwi,
            "cslm" => IndexKind::Cslm,
            other => {
                if let Some(rest) = other.strip_prefix("jiffy-fixed") {
                    IndexKind::JiffyFixed(parse_param(rest, "revision size", None)?)
                } else if let Some(rest) = other.strip_prefix("sharded-jiffy") {
                    IndexKind::ShardedJiffy(parse_param(rest, "shard count", Some(default_shards))?)
                } else if let Some(rest) = other.strip_prefix("sharded-cslm") {
                    IndexKind::ShardedCslm(parse_param(rest, "shard count", Some(default_shards))?)
                } else {
                    return Err(format!("unknown index `{other}`"));
                }
            }
        })
    }

    /// [`parse_with_default_shards`](IndexKind::parse_with_default_shards)
    /// with the default shard count.
    pub fn parse(s: &str) -> Result<IndexKind, String> {
        Self::parse_with_default_shards(s, DEFAULT_SHARDS)
    }

    /// Whether the index supports atomic batch updates (which indices
    /// appear in the paper's batch rows).
    pub fn supports_batches(&self) -> bool {
        matches!(
            self,
            IndexKind::Jiffy
                | IndexKind::JiffyAtomicClock
                | IndexKind::JiffyNoHash
                | IndexKind::JiffyFixed(_)
                | IndexKind::ShardedJiffy(_)
                | IndexKind::CaAvl
                | IndexKind::CaSl
        )
    }
}

fn nohash_config() -> JiffyConfig {
    JiffyConfig { disable_hash_index: true, ..Default::default() }
}

/// Range splits for a sharded kind, chosen from the scenario's key
/// distribution so skewed traffic still spreads across shards.
fn sharded_router_u64(shards: usize, key_space: u64, dist: KeyDist) -> Router<u64> {
    Router::range(workload::shard_splits(dist, key_space, shards))
}

fn sharded_router_u32(shards: usize, key_space: u64, dist: KeyDist) -> Router<u32> {
    // The 4 B shape's key space always fits u32.
    Router::range(
        workload::shard_splits(dist, key_space, shards).into_iter().map(|s| s as u32).collect(),
    )
}

/// Build an index over `u64` keys (used for the 16 B/100 B shape, whose
/// `Key16` keys wrap a u64; benchmarks use u64 directly plus 100 B
/// values to keep comparisons apples-to-apples across all indices).
/// `dist` is the scenario's key distribution — the sharded kinds derive
/// their range splits from it; every other kind ignores it.
pub fn make_index_u64<V: Value>(
    kind: IndexKind,
    key_space: u64,
    dist: KeyDist,
) -> Arc<dyn OrderedIndex<u64, V> + Send + Sync> {
    match kind {
        IndexKind::Jiffy => Arc::new(JiffyMap::<u64, V>::new()),
        IndexKind::JiffyAtomicClock => {
            Arc::new(JiffyMap::<u64, V, AtomicClock>::with_clock_and_config(
                AtomicClock::new(),
                JiffyConfig::default(),
            ))
        }
        IndexKind::JiffyNoHash => Arc::new(JiffyMap::<u64, V>::with_config(nohash_config())),
        IndexKind::JiffyFixed(n) => {
            Arc::new(JiffyMap::<u64, V>::with_config(JiffyConfig::fixed(n)))
        }
        IndexKind::ShardedJiffy(n) => Arc::new(ShardedJiffy::<u64, V>::with_router(
            sharded_router_u64(n, key_space, dist),
            JiffyConfig::default(),
        )),
        IndexKind::ShardedCslm(n) => Arc::new(
            ShardedIndex::new(
                (0..n).map(|_| Cslm::<u64, V>::new()).collect(),
                sharded_router_u64(n, key_space, dist),
            )
            .with_label("sharded-cslm"),
        ),
        IndexKind::SnapTree => {
            Arc::new(SnapTree::<u64, V, _>::with_partitioner(64, RangePartitioner { key_space }))
        }
        IndexKind::KAry => Arc::new(KaryTree::<u64, V>::new()),
        IndexKind::CaAvl => Arc::new(CaTree::<u64, V, AvlContainer<u64, V>>::new()),
        IndexKind::CaSl => Arc::new(CaTree::<u64, V, SkipContainer<u64, V>>::new()),
        IndexKind::CaImm => Arc::new(CaTree::<u64, V, ImmContainer<u64, V>>::new()),
        IndexKind::Lfca => Arc::new(LfcaTree::<u64, V>::new()),
        IndexKind::Kiwi => Arc::new(Kiwi::<u64, V>::new()),
        IndexKind::Cslm => Arc::new(Cslm::<u64, V>::new()),
    }
}

/// Build an index over `u32` keys (the 4 B/4 B shape; the only shape the
/// paper runs KiWi with). See [`make_index_u64`] for `dist`.
pub fn make_index_u32<V: Value>(
    kind: IndexKind,
    key_space: u64,
    dist: KeyDist,
) -> Arc<dyn OrderedIndex<u32, V> + Send + Sync> {
    match kind {
        IndexKind::Jiffy => Arc::new(JiffyMap::<u32, V>::new()),
        IndexKind::JiffyAtomicClock => {
            Arc::new(JiffyMap::<u32, V, AtomicClock>::with_clock_and_config(
                AtomicClock::new(),
                JiffyConfig::default(),
            ))
        }
        IndexKind::JiffyNoHash => Arc::new(JiffyMap::<u32, V>::with_config(nohash_config())),
        IndexKind::JiffyFixed(n) => {
            Arc::new(JiffyMap::<u32, V>::with_config(JiffyConfig::fixed(n)))
        }
        IndexKind::ShardedJiffy(n) => Arc::new(ShardedJiffy::<u32, V>::with_router(
            sharded_router_u32(n, key_space, dist),
            JiffyConfig::default(),
        )),
        IndexKind::ShardedCslm(n) => Arc::new(
            ShardedIndex::new(
                (0..n).map(|_| Cslm::<u32, V>::new()).collect(),
                sharded_router_u32(n, key_space, dist),
            )
            .with_label("sharded-cslm"),
        ),
        IndexKind::SnapTree => {
            Arc::new(SnapTree::<u32, V, _>::with_partitioner(64, RangePartitioner { key_space }))
        }
        IndexKind::KAry => Arc::new(KaryTree::<u32, V>::new()),
        IndexKind::CaAvl => Arc::new(CaTree::<u32, V, AvlContainer<u32, V>>::new()),
        IndexKind::CaSl => Arc::new(CaTree::<u32, V, SkipContainer<u32, V>>::new()),
        IndexKind::CaImm => Arc::new(CaTree::<u32, V, ImmContainer<u32, V>>::new()),
        IndexKind::Lfca => Arc::new(LfcaTree::<u32, V>::new()),
        IndexKind::Kiwi => Arc::new(Kiwi::<u32, V>::new()),
        IndexKind::Cslm => Arc::new(Cslm::<u32, V>::new()),
    }
}

/// The index line-up of one figure (paper §4.1): KiWi appears only in the
/// 4 B figures; batch rows only include batch-capable indices plus the
/// lock-free references.
pub fn indices_for_figure(with_kiwi: bool, batch_row: bool) -> Vec<IndexKind> {
    if batch_row {
        // The paper's batch plots: Jiffy vs CA-AVL vs CA-SL.
        vec![IndexKind::Jiffy, IndexKind::CaAvl, IndexKind::CaSl]
    } else {
        let mut v = vec![
            IndexKind::Jiffy,
            IndexKind::SnapTree,
            IndexKind::KAry,
            IndexKind::CaAvl,
            IndexKind::CaSl,
            IndexKind::CaImm,
            IndexKind::Lfca,
            IndexKind::Cslm,
        ];
        if with_kiwi {
            v.push(IndexKind::Kiwi);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for kind in [
            IndexKind::Jiffy,
            IndexKind::SnapTree,
            IndexKind::KAry,
            IndexKind::CaAvl,
            IndexKind::CaSl,
            IndexKind::CaImm,
            IndexKind::Lfca,
            IndexKind::Kiwi,
            IndexKind::Cslm,
        ] {
            assert_eq!(IndexKind::parse(kind.name()), Ok(kind), "{kind:?}");
        }
        // Parameterized kinds round-trip through their labels.
        for kind in [
            IndexKind::JiffyFixed(64),
            IndexKind::ShardedJiffy(2),
            IndexKind::ShardedJiffy(8),
            IndexKind::ShardedCslm(3),
        ] {
            assert_eq!(IndexKind::parse(&kind.label()), Ok(kind), "{kind:?}");
        }
        // Legacy no-colon spelling still accepted.
        assert_eq!(IndexKind::parse("jiffy-fixed64"), Ok(IndexKind::JiffyFixed(64)));
        assert!(IndexKind::parse("nope").is_err());
    }

    #[test]
    fn parse_sharded_defaults_and_overrides() {
        assert_eq!(IndexKind::parse("sharded-jiffy"), Ok(IndexKind::ShardedJiffy(DEFAULT_SHARDS)));
        assert_eq!(
            IndexKind::parse_with_default_shards("sharded-jiffy", 8),
            Ok(IndexKind::ShardedJiffy(8))
        );
        assert_eq!(
            IndexKind::parse_with_default_shards("sharded-cslm:2", 8),
            Ok(IndexKind::ShardedCslm(2)),
            "explicit :<n> beats the --shards default"
        );
    }

    #[test]
    fn parse_rejects_malformed_params_with_a_message() {
        for bad in [
            "jiffy-fixed",
            "jiffy-fixed:",
            "jiffy-fixed:abc",
            "jiffy-fixed:-3",
            "jiffy-fixed:0",
            "jiffy-fixed0", // legacy no-colon spelling validates too
        ] {
            let err = IndexKind::parse(bad).unwrap_err();
            assert!(err.contains("revision size"), "{bad}: {err}");
        }
        for bad in [
            "sharded-jiffy:",
            "sharded-jiffy:zap",
            "sharded-jiffy:0",
            "sharded-jiffy0",
            "sharded-cslm:-1",
        ] {
            let err = IndexKind::parse(bad).unwrap_err();
            assert!(err.contains("shard count"), "{bad}: {err}");
        }
        assert!(IndexKind::parse("nope").unwrap_err().contains("unknown index"));
    }

    #[test]
    fn every_index_constructs_and_works_u64() {
        for kind in [
            IndexKind::Jiffy,
            IndexKind::JiffyAtomicClock,
            IndexKind::JiffyNoHash,
            IndexKind::JiffyFixed(32),
            IndexKind::ShardedJiffy(2),
            IndexKind::ShardedJiffy(8),
            IndexKind::ShardedCslm(4),
            IndexKind::SnapTree,
            IndexKind::KAry,
            IndexKind::CaAvl,
            IndexKind::CaSl,
            IndexKind::CaImm,
            IndexKind::Lfca,
            IndexKind::Kiwi,
            IndexKind::Cslm,
        ] {
            let idx = make_index_u64::<u32>(kind, 1000, KeyDist::Uniform);
            idx.put(5, 50);
            assert_eq!(idx.get(&5), Some(50), "{kind:?}");
            assert!(idx.remove(&5), "{kind:?}");
            assert_eq!(idx.get(&5), None, "{kind:?}");
        }
    }

    #[test]
    fn every_index_constructs_and_works_u32() {
        for kind in [
            IndexKind::Jiffy,
            IndexKind::Kiwi,
            IndexKind::CaAvl,
            IndexKind::Cslm,
            IndexKind::ShardedJiffy(4),
            IndexKind::ShardedCslm(2),
        ] {
            let idx = make_index_u32::<u32>(kind, 1000, KeyDist::Uniform);
            idx.put(7, 70);
            assert_eq!(idx.get(&7), Some(70), "{kind:?}");
        }
    }

    #[test]
    fn sharded_kinds_use_distribution_aware_splits() {
        // Under hot-range traffic the shards must carve the hot range:
        // the shard owning key 0 must not also own the whole cold space.
        let idx = make_index_u64::<u32>(IndexKind::ShardedJiffy(8), 100_000, KeyDist::HotRange);
        for k in (0..100_000).step_by(997) {
            idx.put(k, k as u32);
        }
        let got = idx.scan_collect(&0, usize::MAX);
        assert_eq!(got.len(), 101, "sharded scan must cover the full space");
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn sharded_capability_flags_in_registry() {
        let jiffy = make_index_u64::<u32>(IndexKind::ShardedJiffy(4), 1000, KeyDist::Uniform);
        assert!(jiffy.supports_consistent_scan());
        assert!(jiffy.supports_atomic_batch());
        assert_eq!(jiffy.name(), "sharded-jiffy");
        let cslm = make_index_u64::<u32>(IndexKind::ShardedCslm(4), 1000, KeyDist::Uniform);
        assert!(!cslm.supports_consistent_scan());
        assert!(!cslm.supports_atomic_batch());
        assert_eq!(cslm.name(), "sharded-cslm");
    }

    #[test]
    fn batch_capable_set_matches_paper() {
        assert!(IndexKind::Jiffy.supports_batches());
        assert!(IndexKind::CaAvl.supports_batches());
        assert!(IndexKind::CaSl.supports_batches());
        assert!(IndexKind::ShardedJiffy(4).supports_batches());
        assert!(!IndexKind::ShardedCslm(4).supports_batches());
        assert!(!IndexKind::Lfca.supports_batches());
        assert!(!IndexKind::SnapTree.supports_batches());
        assert!(!IndexKind::Cslm.supports_batches());
        let batch_lineup = indices_for_figure(true, true);
        assert_eq!(batch_lineup.len(), 3);
        let full_lineup = indices_for_figure(true, false);
        assert_eq!(full_lineup.len(), 9);
    }
}
