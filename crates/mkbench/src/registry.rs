//! Index factory: build any of the paper's indices behind the common
//! [`OrderedIndex`] trait, for either key shape.

use std::sync::Arc;

use baselines::catree::{AvlContainer, ImmContainer, SkipContainer};
use baselines::snaptree::RangePartitioner;
use baselines::{CaTree, Cslm, KaryTree, Kiwi, LfcaTree, SnapTree};
use index_api::OrderedIndex;
use jiffy::{AtomicClock, JiffyConfig, JiffyMap};
use workload::Value;

/// Every index of the paper's evaluation (plus the Jiffy ablation
/// variants used by the A1/A2 experiments).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexKind {
    Jiffy,
    /// Jiffy with the atomic-counter clock (ablation A1, §3.2 fn. 3).
    JiffyAtomicClock,
    /// Jiffy without the in-revision hash index (ablation A2, §3.3.5).
    JiffyNoHash,
    /// Jiffy with a fixed revision size (ablation A3, §3.3.6).
    JiffyFixed(usize),
    SnapTree,
    KAry,
    CaAvl,
    CaSl,
    CaImm,
    Lfca,
    Kiwi,
    Cslm,
}

impl IndexKind {
    pub fn name(&self) -> &'static str {
        match self {
            IndexKind::Jiffy => "jiffy",
            IndexKind::JiffyAtomicClock => "jiffy-atomic",
            IndexKind::JiffyNoHash => "jiffy-nohash",
            IndexKind::JiffyFixed(_) => "jiffy-fixed",
            IndexKind::SnapTree => "snaptree",
            IndexKind::KAry => "k-ary",
            IndexKind::CaAvl => "ca-avl",
            IndexKind::CaSl => "ca-sl",
            IndexKind::CaImm => "ca-imm",
            IndexKind::Lfca => "lfca",
            IndexKind::Kiwi => "kiwi",
            IndexKind::Cslm => "cslm",
        }
    }

    pub fn parse(s: &str) -> Option<IndexKind> {
        Some(match s {
            "jiffy" => IndexKind::Jiffy,
            "jiffy-atomic" => IndexKind::JiffyAtomicClock,
            "jiffy-nohash" => IndexKind::JiffyNoHash,
            "snaptree" => IndexKind::SnapTree,
            "k-ary" | "kary" => IndexKind::KAry,
            "ca-avl" => IndexKind::CaAvl,
            "ca-sl" => IndexKind::CaSl,
            "ca-imm" => IndexKind::CaImm,
            "lfca" => IndexKind::Lfca,
            "kiwi" => IndexKind::Kiwi,
            "cslm" => IndexKind::Cslm,
            other => {
                let fixed = other.strip_prefix("jiffy-fixed")?;
                return fixed.parse().ok().map(IndexKind::JiffyFixed);
            }
        })
    }

    /// Whether the index supports atomic batch updates (which indices
    /// appear in the paper's batch rows).
    pub fn supports_batches(&self) -> bool {
        matches!(
            self,
            IndexKind::Jiffy
                | IndexKind::JiffyAtomicClock
                | IndexKind::JiffyNoHash
                | IndexKind::JiffyFixed(_)
                | IndexKind::CaAvl
                | IndexKind::CaSl
        )
    }
}

fn nohash_config() -> JiffyConfig {
    JiffyConfig { disable_hash_index: true, ..Default::default() }
}

/// Build an index over `u64` keys (used for the 16 B/100 B shape, whose
/// `Key16` keys wrap a u64; benchmarks use u64 directly plus 100 B
/// values to keep comparisons apples-to-apples across all indices).
pub fn make_index_u64<V: Value>(
    kind: IndexKind,
    key_space: u64,
) -> Arc<dyn OrderedIndex<u64, V> + Send + Sync> {
    match kind {
        IndexKind::Jiffy => Arc::new(JiffyMap::<u64, V>::new()),
        IndexKind::JiffyAtomicClock => {
            Arc::new(JiffyMap::<u64, V, AtomicClock>::with_clock_and_config(
                AtomicClock::new(),
                JiffyConfig::default(),
            ))
        }
        IndexKind::JiffyNoHash => Arc::new(JiffyMap::<u64, V>::with_config(nohash_config())),
        IndexKind::JiffyFixed(n) => {
            Arc::new(JiffyMap::<u64, V>::with_config(JiffyConfig::fixed(n)))
        }
        IndexKind::SnapTree => {
            Arc::new(SnapTree::<u64, V, _>::with_partitioner(64, RangePartitioner { key_space }))
        }
        IndexKind::KAry => Arc::new(KaryTree::<u64, V>::new()),
        IndexKind::CaAvl => Arc::new(CaTree::<u64, V, AvlContainer<u64, V>>::new()),
        IndexKind::CaSl => Arc::new(CaTree::<u64, V, SkipContainer<u64, V>>::new()),
        IndexKind::CaImm => Arc::new(CaTree::<u64, V, ImmContainer<u64, V>>::new()),
        IndexKind::Lfca => Arc::new(LfcaTree::<u64, V>::new()),
        IndexKind::Kiwi => Arc::new(Kiwi::<u64, V>::new()),
        IndexKind::Cslm => Arc::new(Cslm::<u64, V>::new()),
    }
}

/// Build an index over `u32` keys (the 4 B/4 B shape; the only shape the
/// paper runs KiWi with).
pub fn make_index_u32<V: Value>(
    kind: IndexKind,
    key_space: u64,
) -> Arc<dyn OrderedIndex<u32, V> + Send + Sync> {
    match kind {
        IndexKind::Jiffy => Arc::new(JiffyMap::<u32, V>::new()),
        IndexKind::JiffyAtomicClock => {
            Arc::new(JiffyMap::<u32, V, AtomicClock>::with_clock_and_config(
                AtomicClock::new(),
                JiffyConfig::default(),
            ))
        }
        IndexKind::JiffyNoHash => Arc::new(JiffyMap::<u32, V>::with_config(nohash_config())),
        IndexKind::JiffyFixed(n) => {
            Arc::new(JiffyMap::<u32, V>::with_config(JiffyConfig::fixed(n)))
        }
        IndexKind::SnapTree => {
            Arc::new(SnapTree::<u32, V, _>::with_partitioner(64, RangePartitioner { key_space }))
        }
        IndexKind::KAry => Arc::new(KaryTree::<u32, V>::new()),
        IndexKind::CaAvl => Arc::new(CaTree::<u32, V, AvlContainer<u32, V>>::new()),
        IndexKind::CaSl => Arc::new(CaTree::<u32, V, SkipContainer<u32, V>>::new()),
        IndexKind::CaImm => Arc::new(CaTree::<u32, V, ImmContainer<u32, V>>::new()),
        IndexKind::Lfca => Arc::new(LfcaTree::<u32, V>::new()),
        IndexKind::Kiwi => Arc::new(Kiwi::<u32, V>::new()),
        IndexKind::Cslm => Arc::new(Cslm::<u32, V>::new()),
    }
}

/// The index line-up of one figure (paper §4.1): KiWi appears only in the
/// 4 B figures; batch rows only include batch-capable indices plus the
/// lock-free references.
pub fn indices_for_figure(with_kiwi: bool, batch_row: bool) -> Vec<IndexKind> {
    if batch_row {
        // The paper's batch plots: Jiffy vs CA-AVL vs CA-SL.
        vec![IndexKind::Jiffy, IndexKind::CaAvl, IndexKind::CaSl]
    } else {
        let mut v = vec![
            IndexKind::Jiffy,
            IndexKind::SnapTree,
            IndexKind::KAry,
            IndexKind::CaAvl,
            IndexKind::CaSl,
            IndexKind::CaImm,
            IndexKind::Lfca,
            IndexKind::Cslm,
        ];
        if with_kiwi {
            v.push(IndexKind::Kiwi);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for kind in [
            IndexKind::Jiffy,
            IndexKind::SnapTree,
            IndexKind::KAry,
            IndexKind::CaAvl,
            IndexKind::CaSl,
            IndexKind::CaImm,
            IndexKind::Lfca,
            IndexKind::Kiwi,
            IndexKind::Cslm,
        ] {
            assert_eq!(IndexKind::parse(kind.name()), Some(kind), "{kind:?}");
        }
        assert_eq!(IndexKind::parse("jiffy-fixed64"), Some(IndexKind::JiffyFixed(64)));
        assert_eq!(IndexKind::parse("nope"), None);
    }

    #[test]
    fn every_index_constructs_and_works_u64() {
        for kind in [
            IndexKind::Jiffy,
            IndexKind::JiffyAtomicClock,
            IndexKind::JiffyNoHash,
            IndexKind::JiffyFixed(32),
            IndexKind::SnapTree,
            IndexKind::KAry,
            IndexKind::CaAvl,
            IndexKind::CaSl,
            IndexKind::CaImm,
            IndexKind::Lfca,
            IndexKind::Kiwi,
            IndexKind::Cslm,
        ] {
            let idx = make_index_u64::<u32>(kind, 1000);
            idx.put(5, 50);
            assert_eq!(idx.get(&5), Some(50), "{kind:?}");
            assert!(idx.remove(&5), "{kind:?}");
            assert_eq!(idx.get(&5), None, "{kind:?}");
        }
    }

    #[test]
    fn every_index_constructs_and_works_u32() {
        for kind in [IndexKind::Jiffy, IndexKind::Kiwi, IndexKind::CaAvl, IndexKind::Cslm] {
            let idx = make_index_u32::<u32>(kind, 1000);
            idx.put(7, 70);
            assert_eq!(idx.get(&7), Some(70), "{kind:?}");
        }
    }

    #[test]
    fn batch_capable_set_matches_paper() {
        assert!(IndexKind::Jiffy.supports_batches());
        assert!(IndexKind::CaAvl.supports_batches());
        assert!(IndexKind::CaSl.supports_batches());
        assert!(!IndexKind::Lfca.supports_batches());
        assert!(!IndexKind::SnapTree.supports_batches());
        assert!(!IndexKind::Cslm.supports_batches());
        let batch_lineup = indices_for_figure(true, true);
        assert_eq!(batch_lineup.len(), 3);
        let full_lineup = indices_for_figure(true, false);
        assert_eq!(full_lineup.len(), 9);
    }
}
