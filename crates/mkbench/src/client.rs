//! `mkbench client` — the end-to-end serving benchmark: drive a real
//! in-process `jiffy-server` over loopback TCP with many pipelined
//! connections and measure what a *client* sees — end-to-end throughput
//! and p50/p95/p99 latency per op class — rather than the in-process
//! numbers the other subcommands report.
//!
//! Each driver thread owns a slice of the connections as **nonblocking**
//! sockets (thousands of connections would need thousands of threads
//! otherwise) and runs them round-robin: top each connection up to the
//! configured pipeline depth, flush writes, collect whatever responses
//! have arrived. Latency is stamped at request encode and measured at
//! response decode, so it includes the wire, the server's frame
//! reassembly, the ingress queue, coalescing, the Jiffy operation, and
//! the response path — the full serving stack.
//!
//! The measured window uses the same [`jiffy_obs::WindowGate`] edge
//! discipline as the in-process runner, and brackets the window with
//! two server `Stats` fetches: the delta becomes the row's `server`
//! column, which is how a report *proves* coalescing was active (mean
//! ops per installed batch > 1) instead of asserting it.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use index_api::OrderedIndex as _;
use jiffy_server::protocol::{decode_response, encode_request, FrameDecoder, Request, Response};
use jiffy_server::{serve, Client, Map, ServerConfig};
use workload::{KeyDist, KeyGen, ThreadMix};

use crate::hist::LogHistogram;
use crate::report::{Measurement, ServerCounters};
use crate::runner::summarize;

/// Parameters of one `mkbench client` run.
#[derive(Clone, Debug)]
pub struct ClientDriverConfig {
    /// Concurrent loopback connections (spread over the driver threads).
    pub conns: usize,
    /// Pipelined requests kept in flight per connection.
    pub pipeline: usize,
    /// Driver threads (each owns `conns / threads` nonblocking sockets).
    pub threads: usize,
    /// Measured-window length in seconds.
    pub secs: f64,
    /// Warmup before the window opens.
    pub warmup: f64,
    /// Key space driven by the workload.
    pub key_space: u64,
    /// Starting shard count of the served elastic map.
    pub shards: usize,
    /// Split and re-merge a shard continuously during the window, so
    /// the measured traffic crosses live migrations.
    pub churn: bool,
    /// Server-side write durability (`none` keeps the RAM-only path).
    pub durability: jiffy_server::Durability,
    /// WAL/checkpoint root when `durability != none`. `None` with
    /// durability on picks a fresh per-process temp directory.
    pub data_dir: Option<std::path::PathBuf>,
}

impl Default for ClientDriverConfig {
    fn default() -> ClientDriverConfig {
        ClientDriverConfig {
            conns: 64,
            pipeline: 8,
            threads: 2,
            secs: 1.0,
            warmup: 0.5,
            key_space: 100_000,
            shards: 2,
            churn: false,
            durability: jiffy_server::Durability::None,
            data_dir: None,
        }
    }
}

/// Issue-weight mix of the driver: 45% pipelined puts, 10% 4-op
/// transactions (update class), 35% gets, 10% scans of up to 100.
const PUT_W: u64 = 45;
const TXN_W: u64 = 10;
const GET_W: u64 = 35;
const TXN_OPS: u64 = 4;
const SCAN_LIMIT: u32 = 100;

const UPDATE: usize = 0;
const LOOKUP: usize = 1;
const SCAN: usize = 2;

/// One in-flight request: id, role slot, op units it will count as on
/// completion (scans patch this from the entries actually returned),
/// and its encode-time stamp.
struct Inflight {
    id: u64,
    role: usize,
    units: u64,
    sent: Instant,
}

/// One nonblocking pipelined connection owned by a driver thread.
struct PipeConn {
    stream: TcpStream,
    dec: FrameDecoder,
    out: Vec<u8>,
    out_at: usize,
    inflight: VecDeque<Inflight>,
    gen: KeyGen,
    next_id: u64,
}

impl PipeConn {
    fn connect(addr: std::net::SocketAddr, key_space: u64, seed: u64) -> std::io::Result<PipeConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(PipeConn {
            stream,
            dec: FrameDecoder::new(),
            out: Vec::new(),
            out_at: 0,
            inflight: VecDeque::new(),
            gen: KeyGen::new(KeyDist::Uniform, key_space, seed),
            next_id: 1,
        })
    }

    /// Encode new requests until the pipeline is full.
    fn top_up(&mut self, depth: usize, key_space: u64) {
        while self.inflight.len() < depth {
            let id = self.next_id;
            self.next_id += 1;
            let k = self.gen.next_key();
            let (req, role, units) = match self.gen.next_raw() % 100 {
                r if r < PUT_W => (Request::Put { id, key: k, val: id }, UPDATE, 1),
                r if r < PUT_W + TXN_W => (
                    Request::Txn {
                        id,
                        ops: (0..TXN_OPS).map(|i| ((k + i) % key_space, Some(id))).collect(),
                    },
                    UPDATE,
                    TXN_OPS,
                ),
                r if r < PUT_W + TXN_W + GET_W => (Request::Get { id, key: k }, LOOKUP, 1),
                _ => (Request::Scan { id, lo: k, limit: SCAN_LIMIT }, SCAN, 0),
            };
            // Compact the written prefix before growing the buffer.
            if self.out_at > 0 && self.out_at == self.out.len() {
                self.out.clear();
                self.out_at = 0;
            }
            encode_request(&mut self.out, &req);
            self.inflight.push_back(Inflight { id, role, units, sent: Instant::now() });
        }
    }

    /// Push buffered request bytes; short writes keep the tail.
    fn pump_out(&mut self) -> std::io::Result<()> {
        while self.out_at < self.out.len() {
            match self.stream.write(&self.out[self.out_at..]) {
                Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
                Ok(n) => self.out_at += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Collect every response available right now. Completion is
    /// id-matched, not order-matched: a connection's requests fan out to
    /// shard workers by key, so responses for different keys may
    /// interleave (same-key requests stay ordered — same worker, FIFO
    /// ingress). That interleaving is the whole reason the wire protocol
    /// carries request ids.
    fn pump_in(
        &mut self,
        buf: &mut [u8],
        mut complete: impl FnMut(usize, u64, Duration),
    ) -> std::io::Result<()> {
        loop {
            match self.stream.read(buf) {
                Ok(0) => return Err(std::io::ErrorKind::UnexpectedEof.into()),
                Ok(n) => {
                    self.dec.extend(&buf[..n]);
                    while let Some(payload) = self
                        .dec
                        .next_frame()
                        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
                    {
                        let resp = decode_response(&payload)
                            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
                        let pos = self
                            .inflight
                            .iter()
                            .position(|f| f.id == resp.id())
                            .expect("server answered an id this connection never sent");
                        let head = self.inflight.remove(pos).expect("position just found");
                        // A scan counts the entries it actually returned
                        // (the repo-wide sink-verified accounting rule).
                        let units = match &resp {
                            Response::Scan { entries, .. } => entries.len() as u64,
                            _ => head.units,
                        };
                        complete(head.role, units, head.sent.elapsed());
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// Run the end-to-end driver: start an in-process server, drive it, and
/// return the client-observed measurement (with the `server` column).
pub fn run_client_driver(cfg: &ClientDriverConfig) -> Measurement {
    let map = Arc::new(Map::with_router(
        jiffy_shard::Router::range_uniform(cfg.shards.max(1), cfg.key_space),
        jiffy::JiffyConfig::default(),
    ));
    // Prefill to the harness's standard 50% density so gets and scans
    // have something to find from the first request.
    for i in 0..cfg.key_space / 2 {
        map.put(workload::permute(i, cfg.key_space), i);
    }
    // With durability on and no explicit root, keep the WAL in a fresh
    // per-process scratch directory (a benchmark must not replay a
    // previous run's log into its prefilled map).
    let data_dir = match cfg.durability {
        jiffy_server::Durability::None => None,
        _ => Some(cfg.data_dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("mkbench-dur-{}", std::process::id()))
        })),
    };
    let server = serve(
        Arc::clone(&map),
        "127.0.0.1:0",
        ServerConfig {
            io_threads: 2,
            workers: 2,
            coalesce_max: 128,
            durability: cfg.durability,
            data_dir,
        },
    )
    .expect("bind loopback server");
    let addr = server.addr();

    let threads = cfg.threads.max(1);
    let stop = Arc::new(AtomicBool::new(false));
    let window = Arc::new(jiffy_obs::WindowGate::new());
    let counters: Arc<[AtomicU64; 3]> = Arc::new(std::array::from_fn(|_| AtomicU64::new(0)));
    let hists: Arc<Mutex<[LogHistogram; 3]>> =
        Arc::new(Mutex::new(std::array::from_fn(|_| LogHistogram::new())));
    let mut window_result: (Duration, ServerCounters) = (Duration::ZERO, ServerCounters::default());

    std::thread::scope(|s| {
        for tid in 0..threads {
            let stop = Arc::clone(&stop);
            let window = Arc::clone(&window);
            let counters = Arc::clone(&counters);
            let hists = Arc::clone(&hists);
            let cfg = cfg.clone();
            let my_conns = cfg.conns / threads + usize::from(tid < cfg.conns % threads);
            s.spawn(move || {
                crate::with_panic_context(
                    || format!("client driver thread {tid}, {my_conns} conns"),
                    || {
                        let mut conns: Vec<PipeConn> = (0..my_conns)
                            .map(|c| {
                                PipeConn::connect(addr, cfg.key_space, (tid * 1_000 + c) as u64 + 1)
                                    .expect("client driver connect")
                            })
                            .collect();
                        let mut edge = jiffy_obs::WindowEdge::new();
                        let mut local =
                            [LogHistogram::new(), LogHistogram::new(), LogHistogram::new()];
                        let mut done = [0u64; 3];
                        let mut buf = vec![0u8; 16 * 1024];
                        while !stop.load(Ordering::Relaxed) {
                            let crossing = edge.observe(&window);
                            if crossing == Some(jiffy_obs::WindowCrossing::Closed) {
                                // Publish this window's counts the moment
                                // it closes, before the main thread reads.
                                for (r, n) in done.iter().enumerate() {
                                    counters[r].fetch_add(*n, Ordering::Relaxed);
                                }
                                done = [0; 3];
                                let mut shared = hists.lock().unwrap();
                                for (r, h) in local.iter().enumerate() {
                                    shared[r].merge(h);
                                }
                                local = std::array::from_fn(|_| LogHistogram::new());
                            }
                            let in_window = edge.in_window();
                            let mut progressed = false;
                            for conn in conns.iter_mut() {
                                conn.top_up(cfg.pipeline, cfg.key_space);
                                conn.pump_out().expect("client driver write");
                                let before = conn.inflight.len();
                                conn.pump_in(&mut buf, |role, units, lat| {
                                    if in_window {
                                        done[role] += units;
                                        local[role].record(lat.as_nanos() as u64);
                                    }
                                })
                                .expect("client driver read");
                                progressed |= conn.inflight.len() != before;
                            }
                            if !progressed {
                                std::thread::yield_now();
                            }
                        }
                        // Stop outran the closed edge: publish anyway so
                        // a racing shutdown never drops window counts.
                        if edge.finish() {
                            for (r, n) in done.iter().enumerate() {
                                counters[r].fetch_add(*n, Ordering::Relaxed);
                            }
                            let mut shared = hists.lock().unwrap();
                            for (r, h) in local.iter().enumerate() {
                                shared[r].merge(h);
                            }
                        }
                    },
                );
            });
        }

        // Control plane: warmup, bracket the window with stats fetches,
        // optionally churn the shard layout through the window.
        let mut control = Client::connect(addr).expect("control connect");
        std::thread::sleep(Duration::from_secs_f64(cfg.warmup));
        let stats0 = control.stats().expect("stats before window");
        window.open();
        let t0 = Instant::now();
        let deadline = t0 + Duration::from_secs_f64(cfg.secs);
        if cfg.churn {
            while Instant::now() < deadline {
                let mut bounds = vec![0u64];
                bounds.extend(map.splits());
                bounds.push(cfg.key_space);
                let (left, mid) = bounds
                    .windows(2)
                    .enumerate()
                    .max_by_key(|(_, w)| w[1] - w[0])
                    .map(|(i, w)| (i, w[0] + (w[1] - w[0]) / 2))
                    .expect("at least one shard");
                if mid > 0 && map.split_at(mid).is_ok() {
                    map.merge_at(left).expect("just-inserted boundary merges");
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        } else {
            std::thread::sleep(Duration::from_secs_f64(cfg.secs));
        }
        window.close();
        let elapsed = t0.elapsed();
        let stats1 = control.stats().expect("stats after window");
        // Give every driver thread a beat to notice the closed edge and
        // publish its window counts before we aggregate.
        std::thread::sleep(Duration::from_millis(50));
        stop.store(true, Ordering::Relaxed);
        window_result = (
            elapsed,
            ServerCounters {
                installed_batches: stats1.installed_batches - stats0.installed_batches,
                coalesced_puts: stats1.coalesced_puts - stats0.coalesced_puts,
                direct_ops: stats1.direct_ops - stats0.direct_ops,
                txns: stats1.txns - stats0.txns,
            },
        );
    });

    server.shutdown();
    let (elapsed, server_counters) = window_result;
    let secs = elapsed.as_secs_f64();
    let ops: [u64; 3] = std::array::from_fn(|r| counters[r].load(Ordering::Relaxed));
    let hists = hists.lock().unwrap();
    Measurement {
        total_mops: ops.iter().sum::<u64>() as f64 / secs / 1e6,
        update_mops: ops[UPDATE] as f64 / secs / 1e6,
        read_mops: ops[LOOKUP] as f64 / secs / 1e6,
        scan_mops: ops[SCAN] as f64 / secs / 1e6,
        mix: ThreadMix {
            update: (PUT_W + TXN_W) as f64 / 100.0,
            lookup: GET_W as f64 / 100.0,
            scan: (100 - PUT_W - TXN_W - GET_W) as f64 / 100.0,
        },
        update_lat: summarize(&hists[UPDATE]),
        lookup_lat: summarize(&hists[LOOKUP]),
        scan_lat: summarize(&hists[SCAN]),
        op_costs: None,
        trace_events: None,
        server: Some(server_counters),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature end-to-end run: ops complete, latency is recorded,
    /// and the server column proves coalescing happened.
    #[test]
    fn tiny_client_driver_run_measures_and_coalesces() {
        let m = run_client_driver(&ClientDriverConfig {
            conns: 16,
            pipeline: 8,
            threads: 2,
            secs: 0.4,
            warmup: 0.1,
            key_space: 10_000,
            shards: 2,
            churn: true,
            ..ClientDriverConfig::default()
        });
        assert!(m.total_mops > 0.0, "no ops completed in the window");
        let upd = m.update_lat.expect("puts ran, update latency must exist");
        assert!(upd.p50_ns <= upd.p99_ns && upd.p99_ns <= upd.max_ns);
        let sv = m.server.expect("client rows always carry the server column");
        assert!(
            sv.installed_batches > 0 && sv.ops_per_batch() > 1.0,
            "coalescing not provably active: {sv:?}"
        );
    }
}
