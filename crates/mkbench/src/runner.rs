//! The scenario runner: spawn role threads against one index, measure
//! basic-op throughput for a fixed duration.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use index_api::{Batch, BatchOp, OrderedIndex};
use workload::{BatchMode, KeyDist, KeyGen, Role, Scenario, Value};

use crate::report::Measurement;

/// Benchmark keys are derived from `u64` draws.
pub trait BenchKey: Ord + Clone + Send + Sync + 'static {
    fn from_u64(v: u64) -> Self;
}

impl BenchKey for u64 {
    #[inline]
    fn from_u64(v: u64) -> Self {
        v
    }
}

impl BenchKey for u32 {
    #[inline]
    fn from_u64(v: u64) -> Self {
        v as u32
    }
}

impl BenchKey for workload::Key16 {
    #[inline]
    fn from_u64(v: u64) -> Self {
        v.into()
    }
}

/// Fixed parameters of one measurement run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    pub threads: usize,
    pub duration: Duration,
    /// Run the workload this long before the measured window starts, so
    /// the autoscaler's granularity adaptation (paper §4.3: "revision
    /// size adjustment time was about 10 seconds" on 10 M entries, about
    /// a second on 1 M) settles outside the measurement.
    pub warmup: Duration,
    /// Unique keys in the key space (paper: 20 M; scaled by CLI).
    pub key_space: u64,
    /// Prefill density (paper: 10 M entries over 20 M keys = 0.5).
    pub prefill_density: f64,
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            threads: 2,
            duration: Duration::from_millis(750),
            warmup: Duration::from_millis(500),
            key_space: 100_000,
            prefill_density: 0.5,
            seed: 0xC0FFEE,
        }
    }
}

/// Prefill the index to the configured density (every `1/density`-th key,
/// giving scans a predictable hit rate like the paper's 10M/20M setup).
/// Keys are inserted in a pseudo-random order: several baselines (k-ary
/// trees in particular, which do not rebalance) degenerate under strictly
/// ascending insertion, which no real load phase produces.
fn prefill<K: BenchKey, V: Value>(index: &dyn OrderedIndex<K, V>, cfg: &RunConfig) {
    let step = (1.0 / cfg.prefill_density).round() as u64;
    let step = step.max(1);
    let count = cfg.key_space / step;
    std::thread::scope(|s| {
        let workers = cfg.threads.clamp(1, 8) as u64;
        for w in 0..workers {
            let index = &index;
            s.spawn(move || {
                let mut i = w;
                while i < count {
                    // Odd-multiplier permutation of [0, count): visits
                    // every slot exactly once, in scattered order.
                    let slot = (i.wrapping_mul(0x9E3779B97F4A7C15) | 1) % count.max(1);
                    let k = slot * step;
                    index.put(K::from_u64(k), V::make(k));
                    i += workers;
                }
            });
        }
        // The permutation above can collide on `slot` (it is not exact);
        // fill any gaps with a cheap ascending sweep of missing keys.
    });
    let mut k = 0;
    while k < cfg.key_space {
        if index.get(&K::from_u64(k)).is_none() {
            index.put(K::from_u64(k), V::make(k));
        }
        k += step;
    }
}

/// Run one scenario cell against `index`. Returns aggregate throughput.
pub fn run_scenario<K: BenchKey, V: Value>(
    index: Arc<dyn OrderedIndex<K, V> + Send + Sync>,
    scenario: &Scenario,
    cfg: &RunConfig,
) -> Measurement {
    prefill(&*index, cfg);

    let roles = scenario.mix.assign(cfg.threads);
    let stop = Arc::new(AtomicBool::new(false));
    let mut measured = (0u64, 0u64, 0u64, 0u64, Duration::ZERO);
    let total_ops = Arc::new(AtomicU64::new(0));
    let update_ops = Arc::new(AtomicU64::new(0));
    let read_ops = Arc::new(AtomicU64::new(0));
    let scan_ops = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for (tid, role) in roles.iter().enumerate() {
            let index = Arc::clone(&index);
            let stop = Arc::clone(&stop);
            let total_ops = Arc::clone(&total_ops);
            let update_ops = Arc::clone(&update_ops);
            let read_ops = Arc::clone(&read_ops);
            let scan_ops = Arc::clone(&scan_ops);
            let role = *role;
            let scenario = scenario.clone();
            let cfg = cfg.clone();
            s.spawn(move || {
                let mut gen = KeyGen::new(
                    scenario.dist,
                    cfg.key_space,
                    cfg.seed ^ (tid as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15),
                );
                let mut local: u64 = 0;
                match role {
                    Role::Update => {
                        let mut batch_buf: Vec<BatchOp<K, V>> = Vec::new();
                        while !stop.load(Ordering::Relaxed) {
                            match scenario.batch {
                                BatchMode::Single => {
                                    let k = gen.next_key();
                                    if gen.next_raw() & 1 == 0 {
                                        index.put(K::from_u64(k), V::make(k));
                                    } else {
                                        index.remove(&K::from_u64(k));
                                    }
                                    local += 1;
                                }
                                BatchMode::BatchSeq { size } => {
                                    let start = gen.next_key();
                                    batch_buf.clear();
                                    for i in 0..size as u64 {
                                        let k = (start + i) % cfg.key_space;
                                        if gen.next_raw() & 1 == 0 {
                                            batch_buf
                                                .push(BatchOp::Put(K::from_u64(k), V::make(k)));
                                        } else {
                                            batch_buf.push(BatchOp::Remove(K::from_u64(k)));
                                        }
                                    }
                                    index.batch_update(Batch::new(std::mem::take(&mut batch_buf)));
                                    local += size as u64;
                                }
                                BatchMode::BatchRand { size } => {
                                    batch_buf.clear();
                                    for _ in 0..size {
                                        let k = gen.next_key();
                                        if gen.next_raw() & 1 == 0 {
                                            batch_buf
                                                .push(BatchOp::Put(K::from_u64(k), V::make(k)));
                                        } else {
                                            batch_buf.push(BatchOp::Remove(K::from_u64(k)));
                                        }
                                    }
                                    let b = Batch::new(std::mem::take(&mut batch_buf));
                                    let n = b.len() as u64;
                                    index.batch_update(b);
                                    local += n;
                                }
                            }
                            if local >= 1024 {
                                update_ops.fetch_add(local, Ordering::Relaxed);
                                total_ops.fetch_add(local, Ordering::Relaxed);
                                local = 0;
                            }
                        }
                        update_ops.fetch_add(local, Ordering::Relaxed);
                        total_ops.fetch_add(local, Ordering::Relaxed);
                        local = 0;
                    }
                    Role::Lookup => {
                        while !stop.load(Ordering::Relaxed) {
                            let k = gen.next_key();
                            std::hint::black_box(index.get(&K::from_u64(k)));
                            local += 1;
                            if local >= 4096 {
                                read_ops.fetch_add(local, Ordering::Relaxed);
                                total_ops.fetch_add(local, Ordering::Relaxed);
                                local = 0;
                            }
                        }
                        read_ops.fetch_add(local, Ordering::Relaxed);
                        total_ops.fetch_add(local, Ordering::Relaxed);
                        local = 0;
                    }
                    Role::Scan => {
                        let mut seen = 0usize;
                        while !stop.load(Ordering::Relaxed) {
                            let k = gen.next_key();
                            index.scan_from(&K::from_u64(k), scenario.scan_len, &mut |_, v| {
                                std::hint::black_box(v);
                                seen += 1;
                            });
                            local += scenario.scan_len as u64;
                            if local >= 4096 {
                                scan_ops.fetch_add(local, Ordering::Relaxed);
                                total_ops.fetch_add(local, Ordering::Relaxed);
                                local = 0;
                            }
                        }
                        std::hint::black_box(seen);
                        scan_ops.fetch_add(local, Ordering::Relaxed);
                        total_ops.fetch_add(local, Ordering::Relaxed);
                        local = 0;
                    }
                }
                let _ = local;
            });
        }
        // Warmup: let the structure adapt, then snapshot the counters and
        // measure only the steady-state window.
        std::thread::sleep(cfg.warmup);
        let t0 = (
            total_ops.load(Ordering::Relaxed),
            update_ops.load(Ordering::Relaxed),
            read_ops.load(Ordering::Relaxed),
            scan_ops.load(Ordering::Relaxed),
        );
        let started = Instant::now();
        std::thread::sleep(cfg.duration);
        let elapsed = started.elapsed();
        let t1 = (
            total_ops.load(Ordering::Relaxed),
            update_ops.load(Ordering::Relaxed),
            read_ops.load(Ordering::Relaxed),
            scan_ops.load(Ordering::Relaxed),
        );
        stop.store(true, Ordering::Relaxed);
        measured = (t1.0 - t0.0, t1.1 - t0.1, t1.2 - t0.2, t1.3 - t0.3, elapsed);
    });

    let (total, update, read, scan, elapsed) = measured;
    let secs = elapsed.as_secs_f64();
    Measurement {
        total_mops: total as f64 / secs / 1e6,
        update_mops: update as f64 / secs / 1e6,
        read_mops: read as f64 / secs / 1e6,
        scan_mops: scan as f64 / secs / 1e6,
    }
}

/// Key distribution helper for ad-hoc harness callers.
pub fn keygen(dist: KeyDist, key_space: u64, seed: u64) -> KeyGen {
    KeyGen::new(dist, key_space, seed)
}
