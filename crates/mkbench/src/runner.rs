//! The scenario runner: spawn weighted-role threads against one index,
//! measure per-role throughput *and latency* for a fixed duration.
//!
//! Accounting is driven by what the index actually did, not by what the
//! harness asked for: scans count the entries the sink visited (a scan
//! that starts near the top of the key space contributes what it saw,
//! not a flat `scan_len`), batch updates count the canonicalized batch
//! length the index applied, and every row records the op-weight mix
//! its threads were scheduled to issue (a 1-thread "75% lookup" cell
//! really issues 75% lookups by interleaving roles within the thread;
//! per-role *completed-op* shares are what the throughput columns say).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use index_api::{Batch, BatchOp, OrderedIndex};
use workload::{BatchMode, KeyDist, KeyGen, RoleSchedule, Scenario, ThreadMix, Value};

use crate::hist::LogHistogram;
#[cfg(feature = "perf-counters")]
use crate::report::OpCosts;
use crate::report::{LatencySummary, Measurement};

/// Last worker-panic diagnostic captured by [`with_panic_context`]
/// (message + harness context), kept so the flake report survives
/// `thread::scope`'s payload-flattening re-raise.
static LAST_WORKER_PANIC: Mutex<Option<String>> = Mutex::new(None);

/// The most recent worker-panic diagnostic, if any worker has panicked
/// in this process (newest wins).
pub fn last_worker_panic() -> Option<String> {
    LAST_WORKER_PANIC.lock().unwrap().clone()
}

/// Run `f`, and if it panics, record the panic payload together with
/// `ctx()`'s harness context (scenario, index, thread id, ...) — to
/// stderr and to [`last_worker_panic`] — before re-raising.
///
/// `std::thread::scope` re-raises a child's panic in the parent, but
/// the parent-side payload says only "a scoped thread panicked": by the
/// time CI sees the failure, *which* scenario cell and worker died is
/// gone. Wrapping each worker body here is what makes a
/// once-in-hundreds steady-state flake diagnosable from its first
/// recurrence.
pub fn with_panic_context<R>(ctx: impl Fn() -> String, f: impl FnOnce() -> R) -> R {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".into());
            let report = format!("worker panic [{}]: {}", ctx(), msg);
            eprintln!("mkbench: {report}");
            // Dump the merged flight-recorder tail and a metrics snapshot
            // while the sibling workers' rings are still warm — the
            // re-raise is about to tear the whole scope down.
            jiffy_obs::dump_on_failure(&report, 64);
            *LAST_WORKER_PANIC.lock().unwrap() = Some(report);
            std::panic::resume_unwind(payload);
        }
    }
}

/// Parse the `MKBENCH_INJECT_PANIC` environment value: the op count at
/// which the forced-panic smoke crashes one worker. An empty value is
/// treated as unset; anything else that is not a `u64` is an **error**,
/// not a disarm — a typo'd trigger must fail the run loudly rather than
/// let the dump-on-panic CI smoke silently pass without ever panicking.
pub fn parse_inject_panic(raw: &str) -> Result<Option<u64>, String> {
    let t = raw.trim();
    if t.is_empty() {
        return Ok(None);
    }
    t.parse::<u64>().map(Some).map_err(|_| {
        format!("MKBENCH_INJECT_PANIC takes an op count (non-negative integer), got `{raw}`")
    })
}

/// Benchmark keys are derived from `u64` draws.
pub trait BenchKey: Ord + Clone + Send + Sync + 'static {
    fn from_u64(v: u64) -> Self;
}

impl BenchKey for u64 {
    #[inline]
    fn from_u64(v: u64) -> Self {
        v
    }
}

impl BenchKey for u32 {
    #[inline]
    fn from_u64(v: u64) -> Self {
        v as u32
    }
}

impl BenchKey for workload::Key16 {
    #[inline]
    fn from_u64(v: u64) -> Self {
        v.into()
    }
}

/// Fixed parameters of one measurement run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    pub threads: usize,
    pub duration: Duration,
    /// Run the workload this long before the measured window starts, so
    /// the autoscaler's granularity adaptation (paper §4.3: "revision
    /// size adjustment time was about 10 seconds" on 10 M entries, about
    /// a second on 1 M) settles outside the measurement.
    pub warmup: Duration,
    /// Unique keys in the key space (paper: 20 M; scaled by CLI).
    pub key_space: u64,
    /// Prefill density (paper: 10 M entries over 20 M keys = 0.5).
    pub prefill_density: f64,
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            threads: 2,
            duration: Duration::from_millis(750),
            warmup: Duration::from_millis(500),
            key_space: 100_000,
            prefill_density: 0.5,
            seed: 0xC0FFEE,
        }
    }
}

/// Prefill the index to the configured density (every `1/density`-th key,
/// giving scans a predictable hit rate like the paper's 10M/20M setup).
/// Keys are inserted in a pseudo-random order: several baselines (k-ary
/// trees in particular, which do not rebalance) degenerate under strictly
/// ascending insertion, which no real load phase produces.
/// `workload::permute` is a true bijection on `[0, count)`, so every slot
/// is written exactly once by the parallel workers — no serial gap sweep.
fn prefill<K: BenchKey, V: Value>(index: &dyn OrderedIndex<K, V>, cfg: &RunConfig) {
    let step = (1.0 / cfg.prefill_density).round() as u64;
    let step = step.max(1);
    let count = cfg.key_space / step;
    std::thread::scope(|s| {
        let workers = cfg.threads.clamp(1, 8) as u64;
        for w in 0..workers {
            let index = &index;
            s.spawn(move || {
                let mut i = w;
                while i < count {
                    let k = workload::permute(i, count) * step;
                    index.put(K::from_u64(k), V::make(k));
                    i += workers;
                }
            });
        }
    });
}

/// Role indices into the per-role counter/histogram arrays.
const UPDATE: usize = 0;
const LOOKUP: usize = 1;
const SCAN: usize = 2;

/// Latency is sampled (1 op in 16) so the two clock reads do not distort
/// the throughput the same row reports.
const SAMPLE_MASK: u64 = 0xF;

/// Local ops are flushed to the shared counters in chunks to keep
/// cross-thread contention off the hot path.
const FLUSH_EVERY: u64 = 1024;

pub(crate) fn summarize(h: &LogHistogram) -> Option<LatencySummary> {
    (!h.is_empty()).then(|| LatencySummary {
        p50_ns: h.percentile(50.0),
        p95_ns: h.percentile(95.0),
        p99_ns: h.percentile(99.0),
        max_ns: h.max(),
        samples: h.count(),
    })
}

/// Run one scenario cell against `index`. Returns per-role throughput,
/// the effective executed mix, and per-role latency percentiles.
pub fn run_scenario<K: BenchKey, V: Value>(
    index: Arc<dyn OrderedIndex<K, V> + Send + Sync>,
    scenario: &Scenario,
    cfg: &RunConfig,
) -> Measurement {
    prefill(&*index, cfg);

    let plans = scenario.mix.plan(cfg.threads);
    let stop = Arc::new(AtomicBool::new(false));
    let window = Arc::new(jiffy_obs::WindowGate::new());
    let counters: Arc<[AtomicU64; 3]> = Arc::new(std::array::from_fn(|_| AtomicU64::new(0)));
    let hists: Arc<Mutex<[LogHistogram; 3]>> =
        Arc::new(Mutex::new(std::array::from_fn(|_| LogHistogram::new())));
    #[cfg(feature = "perf-counters")]
    let op_costs: Arc<Mutex<OpCosts>> = Arc::new(Mutex::new(OpCosts::default()));
    let mut measured = ([0u64; 3], Duration::ZERO, [0u64; jiffy_obs::KIND_COUNT]);

    std::thread::scope(|s| {
        for (tid, plan) in plans.iter().enumerate() {
            let index = Arc::clone(&index);
            let stop = Arc::clone(&stop);
            let window = Arc::clone(&window);
            let counters = Arc::clone(&counters);
            let hists = Arc::clone(&hists);
            #[cfg(feature = "perf-counters")]
            let op_costs = Arc::clone(&op_costs);
            let mut sched = RoleSchedule::new(*plan);
            let scenario = scenario.clone();
            let cfg = cfg.clone();
            s.spawn(move || {
                let ctx = format!(
                    "scenario {}, worker {}/{}, key_space {}",
                    scenario.id, tid, cfg.threads, cfg.key_space
                );
                with_panic_context(
                    || ctx.clone(),
                    || {
                        let mut gen = KeyGen::new(
                            scenario.dist,
                            cfg.key_space,
                            cfg.seed ^ (tid as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15),
                        );
                        let mut local = [0u64; 3];
                        let mut local_hist: [LogHistogram; 3] =
                            std::array::from_fn(|_| LogHistogram::new());
                        let mut batch_buf: Vec<BatchOp<K, V>> = Vec::new();
                        // Per-role op counters drive latency sampling. A single
                        // global counter would alias: the schedule is periodic
                        // (period 4 for the 25/50/25 mix), so "every 16th
                        // iteration" lands on the same role forever and the
                        // other roles never get sampled.
                        let mut issued = [0u64; 3];
                        // Op-cost counters are thread-local inside jiffy; fence
                        // them at the measurement-window edges so the aggregate
                        // matches the throughput window (warmup discarded).
                        let mut edge = jiffy_obs::WindowEdge::new();
                        while !stop.load(Ordering::Relaxed) {
                            if let Some(crossing) = edge.observe(&window) {
                                #[cfg(feature = "perf-counters")]
                                {
                                    let delta = jiffy::counters::take();
                                    if matches!(crossing, jiffy_obs::WindowCrossing::Closed) {
                                        add_op_costs(&op_costs, &delta);
                                    }
                                }
                                #[cfg(not(feature = "perf-counters"))]
                                let _ = crossing;
                            }
                            let pick = sched.next_role() as usize;

                            let sampled = issued[pick] & SAMPLE_MASK == 0 && edge.in_window();
                            issued[pick] = issued[pick].wrapping_add(1);
                            let t_start = sampled.then(Instant::now);
                            // `done` is what the index verifiably did: basic ops
                            // for singles, canonicalized batch length for
                            // batches, sink-visited entries for scans.
                            let done: u64 = match pick {
                                UPDATE => match scenario.batch {
                                    BatchMode::Single => {
                                        let k = gen.next_key();
                                        if gen.next_raw() & 1 == 0 {
                                            index.put(K::from_u64(k), V::make(k));
                                        } else {
                                            index.remove(&K::from_u64(k));
                                        }
                                        1
                                    }
                                    BatchMode::BatchSeq { size } => {
                                        let start = gen.next_key();
                                        batch_buf.clear();
                                        for i in 0..size as u64 {
                                            let k = (start + i) % cfg.key_space;
                                            if gen.next_raw() & 1 == 0 {
                                                batch_buf
                                                    .push(BatchOp::Put(K::from_u64(k), V::make(k)));
                                            } else {
                                                batch_buf.push(BatchOp::Remove(K::from_u64(k)));
                                            }
                                        }
                                        let b = Batch::new(std::mem::take(&mut batch_buf));
                                        let n = b.len() as u64;
                                        index.batch_update(b);
                                        n
                                    }
                                    BatchMode::BatchRand { size } => {
                                        batch_buf.clear();
                                        for _ in 0..size {
                                            let k = gen.next_key();
                                            if gen.next_raw() & 1 == 0 {
                                                batch_buf
                                                    .push(BatchOp::Put(K::from_u64(k), V::make(k)));
                                            } else {
                                                batch_buf.push(BatchOp::Remove(K::from_u64(k)));
                                            }
                                        }
                                        let b = Batch::new(std::mem::take(&mut batch_buf));
                                        let n = b.len() as u64;
                                        index.batch_update(b);
                                        n
                                    }
                                },
                                LOOKUP => {
                                    let k = gen.next_key();
                                    std::hint::black_box(index.get(&K::from_u64(k)));
                                    1
                                }
                                _ => {
                                    let k = gen.next_key();
                                    let mut seen = 0u64;
                                    index.scan_from(
                                        &K::from_u64(k),
                                        scenario.scan_len,
                                        &mut |_, v| {
                                            std::hint::black_box(v);
                                            seen += 1;
                                        },
                                    );
                                    seen
                                }
                            };
                            if let Some(t) = t_start {
                                local_hist[pick].record(t.elapsed().as_nanos() as u64);
                            }
                            local[pick] += done;
                            if local[pick] >= FLUSH_EVERY {
                                counters[pick].fetch_add(local[pick], Ordering::Relaxed);
                                local[pick] = 0;
                            }
                        }
                        for r in 0..3 {
                            counters[r].fetch_add(local[r], Ordering::Relaxed);
                        }
                        // The stop flag can arrive before the worker observes the
                        // window closing; flush the open window either way.
                        #[cfg(feature = "perf-counters")]
                        if edge.finish() {
                            add_op_costs(&op_costs, &jiffy::counters::take());
                        }
                        let mut shared = hists.lock().unwrap();
                        for r in 0..3 {
                            shared[r].merge(&local_hist[r]);
                        }
                    },
                )
            });
        }
        // Warmup: let the structure adapt, then snapshot the counters and
        // measure (and sample latency in) only the steady-state window.
        std::thread::sleep(cfg.warmup);
        let t0: [u64; 3] = std::array::from_fn(|r| counters[r].load(Ordering::Relaxed));
        let trace_base = jiffy_obs::CounterWindow::mark();
        window.open();
        let started = Instant::now();
        std::thread::sleep(cfg.duration);
        window.close();
        let elapsed = started.elapsed();
        let t1: [u64; 3] = std::array::from_fn(|r| counters[r].load(Ordering::Relaxed));
        stop.store(true, Ordering::Relaxed);
        measured = (std::array::from_fn(|r| t1[r] - t0[r]), elapsed, trace_base.delta());
    });

    let (ops, elapsed, trace_events) = measured;
    let secs = elapsed.as_secs_f64();
    let hists = hists.lock().unwrap();
    Measurement {
        total_mops: ops.iter().sum::<u64>() as f64 / secs / 1e6,
        update_mops: ops[UPDATE] as f64 / secs / 1e6,
        read_mops: ops[LOOKUP] as f64 / secs / 1e6,
        scan_mops: ops[SCAN] as f64 / secs / 1e6,
        mix: ThreadMix::effective(&plans),
        update_lat: summarize(&hists[UPDATE]),
        lookup_lat: summarize(&hists[LOOKUP]),
        scan_lat: summarize(&hists[SCAN]),
        // Non-jiffy indexes never bump the thread-local counters, so an
        // all-zero aggregate means "not a jiffy run" — omit the column.
        #[cfg(feature = "perf-counters")]
        op_costs: {
            let c = *op_costs.lock().unwrap();
            (c != OpCosts::default()).then_some(c)
        },
        #[cfg(not(feature = "perf-counters"))]
        op_costs: None,
        // Window-scoped flight-recorder event counts. All-zero (e.g. a
        // baseline index that never emits events) omits the column.
        trace_events: trace_events.iter().any(|&n| n > 0).then_some(trace_events),
        // Only the networked `client` driver has a server to report on.
        server: None,
    }
}

/// Fold one worker's recording-window counter delta into the shared
/// per-scenario aggregate.
#[cfg(feature = "perf-counters")]
fn add_op_costs(acc: &Mutex<OpCosts>, c: &jiffy::counters::OpCostCounters) {
    let mut a = acc.lock().unwrap();
    a.descents += c.descents;
    a.nodes_visited += c.nodes_visited;
    a.revisions_walked += c.revisions_walked;
    a.locate_retries += c.locate_retries;
    a.help_iterations += c.help_iterations;
    a.backoff_waits += c.backoff_waits;
    a.fastpath_attempts += c.fastpath_attempts;
    a.fastpath_hits += c.fastpath_hits;
}

/// Key distribution helper for ad-hoc harness callers.
pub fn keygen(dist: KeyDist, key_space: u64, seed: u64) -> KeyGen {
    KeyGen::new(dist, key_space, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::KvShape;

    /// A tiny end-to-end run: the measurement must report a truthful
    /// effective mix for a 1-thread mixed cell (the seed harness reported
    /// update-only here) and sink-verified scan accounting.
    #[test]
    fn one_thread_mixed_cell_reports_truthful_mix_and_latency() {
        let index: Arc<dyn OrderedIndex<u64, u64> + Send + Sync> =
            Arc::new(jiffy::JiffyMap::<u64, u64>::new());
        let scenario =
            Scenario::new(KvShape::K4V4, KeyDist::Uniform, ThreadMix::MIXED, 10, BatchMode::Single);
        let cfg = RunConfig {
            threads: 1,
            duration: Duration::from_millis(150),
            warmup: Duration::from_millis(50),
            key_space: 10_000,
            prefill_density: 0.5,
            seed: 7,
        };
        let m = run_scenario(index, &scenario, &cfg);
        // The executed mix equals the scenario's mix even at t=1.
        assert!((m.mix.update - 0.25).abs() < 1e-9, "{:?}", m.mix);
        assert!((m.mix.lookup - 0.5).abs() < 1e-9, "{:?}", m.mix);
        assert!((m.mix.scan - 0.25).abs() < 1e-9, "{:?}", m.mix);
        // All three roles actually ran and were measured.
        assert!(m.update_mops > 0.0, "{m:?}");
        assert!(m.read_mops > 0.0, "{m:?}");
        assert!(m.scan_mops > 0.0, "{m:?}");
        // Latency percentiles exist for every active role and are sane.
        for lat in [m.update_lat, m.lookup_lat, m.scan_lat] {
            let lat = lat.expect("role ran, latency must be recorded");
            assert!(lat.samples > 0);
            assert!(lat.p50_ns > 0);
            assert!(lat.p50_ns <= lat.p95_ns && lat.p95_ns <= lat.p99_ns);
            assert!(lat.p99_ns <= lat.max_ns);
        }
        // Scan throughput is bounded by what the sink can have seen:
        // scan_len entries per scan at most (no flat scan_len credit).
        let scans_per_sec_upper = m.read_mops * 1e6; // scans are rarer than lookups here
        assert!(
            m.scan_mops * 1e6 <= scans_per_sec_upper * scenario.scan_len as f64,
            "scan accounting out of bounds: {m:?}"
        );
    }

    /// The panic harness must capture the payload *and* the harness
    /// context before re-raising, so a scoped-thread flake is
    /// diagnosable after `thread::scope` flattens the payload.
    #[test]
    fn panic_context_records_payload_and_context() {
        let caught = std::panic::catch_unwind(|| {
            with_panic_context(
                || "scenario s1, worker 3/4".to_string(),
                || panic!("boom at key {}", 42),
            )
        });
        assert!(caught.is_err(), "panic must be re-raised");
        let report = last_worker_panic().expect("panic recorded");
        assert!(report.contains("scenario s1, worker 3/4"), "{report}");
        assert!(report.contains("boom at key 42"), "{report}");
    }

    /// A typo'd `MKBENCH_INJECT_PANIC` must be an error, never a silent
    /// disarm: the forced-panic smoke would otherwise "pass" having
    /// tested nothing.
    #[test]
    fn inject_panic_parse_rejects_garbage() {
        assert_eq!(parse_inject_panic("20000"), Ok(Some(20000)));
        assert_eq!(parse_inject_panic(" 7 "), Ok(Some(7)));
        assert_eq!(parse_inject_panic("0"), Ok(Some(0)));
        assert_eq!(parse_inject_panic(""), Ok(None));
        assert_eq!(parse_inject_panic("   "), Ok(None));
        for bad in ["2oooo", "-1", "1e4", "20_000", "yes", "18446744073709551616"] {
            let err = parse_inject_panic(bad).expect_err(bad);
            assert!(err.contains("MKBENCH_INJECT_PANIC"), "{err}");
            assert!(err.contains(bad.trim()), "{err}");
        }
    }

    /// Scans near the top of the key space must credit only visited
    /// entries: with 10 entries total, a scan asking for 1000 gets ≤ 10.
    #[test]
    fn scan_accounting_is_sink_verified() {
        let index: Arc<dyn OrderedIndex<u64, u64> + Send + Sync> =
            Arc::new(jiffy::JiffyMap::<u64, u64>::new());
        let scenario = Scenario::new(
            KvShape::K4V4,
            KeyDist::Uniform,
            ThreadMix { update: 0.0, lookup: 0.0, scan: 1.0 },
            1000,
            BatchMode::Single,
        );
        // Key space of 20 with density 0.5 → 10 entries; every scan asks
        // for 1000 entries but can visit at most 10.
        let cfg = RunConfig {
            threads: 1,
            duration: Duration::from_millis(100),
            warmup: Duration::from_millis(20),
            key_space: 20,
            prefill_density: 0.5,
            seed: 3,
        };
        let m = run_scenario(index, &scenario, &cfg);
        let lat = m.scan_lat.expect("scans ran");
        // Scans per second is at least samples * 16 / secs; each scan can
        // contribute at most 10 entries. The old harness would have
        // reported 100x that (scan_len = 1000 per scan).
        let scan_entries_per_sec = m.scan_mops * 1e6;
        let scans_per_sec_lower = lat.samples as f64 * 16.0 / cfg.duration.as_secs_f64();
        assert!(
            scan_entries_per_sec <= scans_per_sec_lower * 10.0 * 4.0,
            "scan credit exceeds what 10 entries/scan allows: {m:?}"
        );
    }
}
