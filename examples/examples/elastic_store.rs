//! An elastic sharded store: online shard split/merge under live load.
//!
//! Builds an `ElasticJiffy` over 2 range-partitioned shards, puts
//! writers and a consistent scanner on it, and then — while they run —
//! splits the layout to 4 shards, lets a drift-driven `Resharder` react
//! to deliberately skewed traffic, and merges back down. Every cutover
//! is a snapshot-assisted migration (copy at a cut version, pending
//! router epoch, two-phase delta drain, single-CAS commit) that the
//! running operations help to completion; the final audit proves no key
//! was lost or duplicated along the way.
//!
//! Run: `cargo run --release -p jiffy-examples --example elastic_store`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use index_api::OrderedIndex;
use jiffy_shard::{ElasticJiffy, Resharder, Router};

const KEY_SPACE: u64 = 8_000;

fn main() {
    let map: Arc<ElasticJiffy<u64, u64>> = Arc::new(ElasticJiffy::with_router(
        Router::range_uniform(2, KEY_SPACE),
        jiffy::JiffyConfig::default(),
    ));
    println!("built `{}`: {} shards over [0, {KEY_SPACE})", map.name(), map.shard_count());

    let stop = AtomicBool::new(false);
    let writes = AtomicU64::new(0);
    let scans = AtomicU64::new(0);
    std::thread::scope(|s| {
        // Three writers, each owning a disjoint key slice (so the final
        // content is exactly auditable). The third one is deliberately
        // skewed into the bottom of the space to provoke the resharder.
        for t in 0..3u64 {
            let map = Arc::clone(&map);
            let (stop, writes) = (&stop, &writes);
            s.spawn(move || {
                let span = KEY_SPACE / 4;
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let slice = if t == 2 { 0 } else { t + 1 };
                    map.put(slice * span + (i % span), i);
                    writes.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        // A consistent scanner: sortedness across shard boundaries must
        // hold through every cutover.
        {
            let map = Arc::clone(&map);
            let (stop, scans) = (&stop, &scans);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let run = map.scan_collect(&0, 512);
                    assert!(run.windows(2).all(|w| w[0].0 < w[1].0), "scan tore across a cutover");
                    scans.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // Manual elasticity: split 2 -> 4 under load.
        map.split_at(KEY_SPACE / 4).expect("split low half");
        map.split_at(KEY_SPACE * 3 / 4).expect("split high half");
        println!("split to {} shards at {:?}", map.shard_count(), map.splits());

        // Drift-driven elasticity: let the resharder watch the skewed
        // traffic and act on its own.
        let mut resharder = Resharder::new(1.5, 6).with_min_ops(2_000);
        for _ in 0..50 {
            if let Some(event) = resharder.step(&map, KEY_SPACE).expect("resharder step") {
                println!(
                    "resharder acted: {event:?} -> {} shards {:?}",
                    map.shard_count(),
                    map.splits()
                );
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }

        // And back down: merge the two lowest shards while load runs.
        map.merge_at(0).expect("merge");
        println!("merged back to {} shards at {:?}", map.shard_count(), map.splits());

        stop.store(true, Ordering::Relaxed);
    });

    // Audit: every slice key a writer last wrote must be present exactly
    // once, and scan/get must agree.
    let entries = map.scan_collect(&0, usize::MAX);
    assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "final scan must be sorted+unique");
    for (k, v) in &entries {
        assert_eq!(map.get(k), Some(*v), "scan/get disagree on {k}");
    }
    println!(
        "survived {} writes and {} consistent scans across 3+ live migrations; {} keys present, zero lost/duplicated",
        writes.load(Ordering::Relaxed),
        scans.load(Ordering::Relaxed),
        entries.len()
    );
}
