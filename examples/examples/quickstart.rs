//! Quickstart: the Jiffy API in two minutes.
//!
//! ```sh
//! cargo run --release -p jiffy-examples --example quickstart
//! ```

use jiffy::{Batch, BatchOp, JiffyMap};

fn main() {
    // A Jiffy map is an ordered key-value index; all operations take
    // `&self`, so share it by reference or `Arc` across threads.
    let map: JiffyMap<u64, String> = JiffyMap::new();

    // Single-key operations: linearizable put / get / remove.
    map.put(3, "three".into());
    map.put(1, "one".into());
    map.put(2, "two".into());
    assert_eq!(map.get(&2).as_deref(), Some("two"));
    assert_eq!(map.remove(&2).as_deref(), Some("two"));
    assert_eq!(map.get(&2), None);

    // Batch updates: a set of puts/removes that becomes visible
    // atomically — no reader or snapshot ever sees half of it.
    map.batch(Batch::new(vec![
        BatchOp::Put(10, "ten".into()),
        BatchOp::Put(20, "twenty".into()),
        BatchOp::Remove(1),
    ]));
    assert_eq!(map.get(&1), None);
    assert_eq!(map.get(&20).as_deref(), Some("twenty"));

    // Snapshots: an O(1), wait-free consistent view. Updates proceed
    // unimpeded; the snapshot keeps reading the old state.
    let snap = map.snapshot();
    map.put(30, "thirty".into());
    map.remove(&10);
    assert_eq!(snap.get(&10).as_deref(), Some("ten"), "snapshot still sees key 10");
    assert_eq!(snap.get(&30), None, "snapshot predates key 30");

    // Range scans always run on a snapshot: sorted and consistent.
    let entries = snap.range(&0, usize::MAX);
    println!("snapshot state ({} entries):", entries.len());
    for (k, v) in &entries {
        println!("  {k:>3} -> {v}");
    }

    // The live map has moved on.
    let now = map.snapshot();
    println!("live state ({} entries):", now.len());
    for (k, v) in now.range(&0, usize::MAX) {
        println!("  {k:>3} -> {v}");
    }

    // Structural telemetry (nodes, revision sizes) for the curious.
    println!("structure: {:?}", map.debug_stats());
}
