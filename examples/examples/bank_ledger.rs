//! Bank ledger: atomic multi-key transfers audited by concurrent
//! snapshot scans.
//!
//! The scenario the paper's batch updates exist for: moving value
//! between keys must be all-or-nothing, and an auditor scanning the
//! whole ledger must never observe money created or destroyed — even
//! while thousands of transfers are in flight and the index is
//! splitting/merging nodes underneath.
//!
//! ```sh
//! cargo run --release -p jiffy-examples --example bank_ledger
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use jiffy::{Batch, BatchOp, JiffyMap};

const ACCOUNTS: u64 = 1_000;
const OPENING_BALANCE: i64 = 100;

fn main() {
    let ledger: JiffyMap<u64, i64> = JiffyMap::new();
    for acct in 0..ACCOUNTS {
        ledger.put(acct, OPENING_BALANCE);
    }
    let expected_total = ACCOUNTS as i64 * OPENING_BALANCE;

    let stop = AtomicBool::new(false);
    let transfers = AtomicU64::new(0);
    let audits = AtomicU64::new(0);

    std::thread::scope(|s| {
        // Tellers: move random amounts between random accounts, each
        // transfer one atomic batch (debit + credit). Each teller owns a
        // disjoint stripe of accounts (the branch it serves), so its
        // read-modify-write transfers don't race at the application
        // level; the *index-level* atomicity under concurrency is what
        // the auditor checks.
        const TELLERS: u64 = 3;
        for teller in 0..TELLERS {
            let ledger = &ledger;
            let stop = &stop;
            let transfers = &transfers;
            s.spawn(move || {
                let stripe = ACCOUNTS / TELLERS;
                let base = teller * stripe;
                let mut seed = 0x5eed ^ (teller + 1);
                let mut rng = move || {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    seed
                };
                while !stop.load(Ordering::Relaxed) {
                    let from = base + rng() % stripe;
                    let to = base + rng() % stripe;
                    if from == to {
                        continue;
                    }
                    let amount = (rng() % 20) as i64 + 1;
                    let from_bal = ledger.get(&from).unwrap_or(0);
                    let to_bal = ledger.get(&to).unwrap_or(0);
                    ledger.batch(Batch::new(vec![
                        BatchOp::Put(from, from_bal - amount),
                        BatchOp::Put(to, to_bal + amount),
                    ]));
                    transfers.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Auditor: scans a consistent snapshot; the total must always
        // balance. A torn transfer would show up immediately.
        let ledger_ref = &ledger;
        let stop_ref = &stop;
        let audits_ref = &audits;
        s.spawn(move || {
            while !stop_ref.load(Ordering::Relaxed) {
                let snap = ledger_ref.snapshot();
                let total: i64 = snap.range(&0, usize::MAX).iter().map(|(_, v)| *v).sum();
                assert_eq!(
                    total, expected_total,
                    "AUDIT FAILURE: ledger total drifted — a transfer tore"
                );
                audits_ref.fetch_add(1, Ordering::Relaxed);
            }
        });
        std::thread::sleep(Duration::from_secs(2));
        stop.store(true, Ordering::Relaxed);
    });

    let final_snap = ledger.snapshot();
    let total: i64 = final_snap.range(&0, usize::MAX).iter().map(|(_, v)| *v).sum();
    println!(
        "{} transfers executed, {} audits passed, final total = {} (expected {})",
        transfers.load(Ordering::Relaxed),
        audits.load(Ordering::Relaxed),
        total,
        expected_total
    );
    assert_eq!(total, expected_total);
    println!("every audit saw a perfectly balanced ledger — batches are atomic.");
}
