//! An 8-shard store with coordinated cross-shard batches and scans.
//!
//! Builds a `ShardedJiffy` over 8 range-partitioned shards, hammers it
//! with cross-shard batches (one key per shard, all stamped with the
//! same value), and proves with a concurrent scanner that every scan
//! observes the batches all-or-nothing: a single stamp across all 8
//! shards, never a torn mix.
//!
//! Run: `cargo run --release -p jiffy-examples --example sharded_store`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use index_api::{Batch, BatchOp, OrderedIndex};
use jiffy_shard::{Router, ShardedJiffy};

const SHARDS: usize = 8;
const KEY_SPACE: u64 = 8_000;

fn main() {
    let map: Arc<ShardedJiffy<u64, u64>> = Arc::new(ShardedJiffy::with_router(
        Router::range_uniform(SHARDS, KEY_SPACE),
        jiffy::JiffyConfig::default(),
    ));
    println!(
        "built `{}`: {} shards over [0, {KEY_SPACE}), consistent scans: {}, atomic batches: {}",
        map.name(),
        map.shard_count(),
        map.supports_consistent_scan(),
        map.supports_atomic_batch(),
    );

    // One key per shard; every batch rewrites all eight with one stamp.
    let keys: Vec<u64> = (0..SHARDS as u64).map(|s| s * (KEY_SPACE / SHARDS as u64) + 7).collect();
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(map.shard_for(k), i, "key {k} should land in shard {i}");
    }
    map.batch_update(Batch::new(keys.iter().map(|k| BatchOp::Put(*k, 0)).collect()));

    let stop = AtomicBool::new(false);
    let batches = AtomicU64::new(0);
    let scans = AtomicU64::new(0);
    std::thread::scope(|s| {
        // Two writers racing cross-shard batches.
        for t in 0..2u64 {
            let map = Arc::clone(&map);
            let stop = &stop;
            let batches = &batches;
            let keys = keys.clone();
            s.spawn(move || {
                let mut stamp = t + 1;
                while !stop.load(Ordering::Relaxed) {
                    map.batch_update(Batch::new(
                        keys.iter().map(|k| BatchOp::Put(*k, stamp)).collect(),
                    ));
                    batches.fetch_add(1, Ordering::Relaxed);
                    stamp += 2;
                }
            });
        }
        // A scanner proving all-or-nothing visibility across shards.
        let map = Arc::clone(&map);
        let stop = &stop;
        let scans = &scans;
        s.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let entries = map.scan_collect(&0, usize::MAX);
                assert_eq!(entries.len(), SHARDS, "scan lost keys: {entries:?}");
                // All-or-nothing: one stamp across all shards. (The two
                // writers' stamp values are not globally ordered by
                // commit time, so equality within a scan is the whole
                // atomicity claim — there is no cross-scan ordering to
                // assert on.)
                let stamps: Vec<u64> = entries.iter().map(|(_, v)| *v).collect();
                assert!(
                    stamps.windows(2).all(|w| w[0] == w[1]),
                    "TORN cross-shard batch observed: {stamps:?}"
                );
                scans.fetch_add(1, Ordering::Relaxed);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
    });

    println!(
        "{} cross-shard batches raced {} consistent scans: every scan saw one stamp across all {} shards (all-or-nothing)",
        batches.load(Ordering::Relaxed),
        scans.load(Ordering::Relaxed),
        SHARDS,
    );
    let final_state = map.scan_collect(&0, usize::MAX);
    println!("final state: {final_state:?}");
}
