//! Watch the autoscaler adapt (paper §3.3.6, §4.3).
//!
//! Jiffy tunes its synchronization granularity — the size of the
//! immutable revisions — to the observed read/update mix: small
//! revisions when updates dominate (less copying per CAS), large ones
//! when reads dominate (shallower index, better scans). This example
//! drives the same map through a write-heavy phase and then a
//! read-heavy phase and prints the mean revision size as it drifts
//! between the configured bounds (default 25–300).
//!
//! ```sh
//! cargo run --release -p jiffy-examples --example adaptive
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use jiffy::JiffyMap;

const KEYS: u64 = 100_000;

fn phase(map: &JiffyMap<u64, u64>, label: &str, read_fraction: u32, secs: u64) {
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for t in 0..2u64 {
            let map = &map;
            let stop = &stop;
            s.spawn(move || {
                let mut seed = t * 7919 + 1;
                let mut rng = move || {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    seed
                };
                while !stop.load(Ordering::Relaxed) {
                    let k = rng() % KEYS;
                    if rng() % 100 < read_fraction as u64 {
                        std::hint::black_box(map.get(&k));
                    } else if rng() & 1 == 0 {
                        map.put(k, k);
                    } else {
                        map.remove(&k);
                    }
                }
            });
        }
        for i in 1..=secs {
            std::thread::sleep(Duration::from_secs(1));
            let st = map.debug_stats();
            println!(
                "{label:<12} t={i:>2}s  nodes={:<6} mean revision size={:6.1}",
                st.nodes, st.mean_revision_size
            );
        }
        stop.store(true, Ordering::Relaxed);
    });
}

fn main() {
    let map: JiffyMap<u64, u64> = JiffyMap::new();
    for k in (0..KEYS).step_by(2) {
        map.put(k, k);
    }
    println!("after prefill: {:?}", map.debug_stats());
    println!("\n--- write-only phase (expect revisions to shrink toward ~25) ---");
    phase(&map, "write-only", 0, 4);
    println!("\n--- read-heavy phase, 95% gets (expect revisions to grow) ---");
    phase(&map, "read-heavy", 95, 6);
    let st = map.debug_stats();
    println!(
        "\nfinal: mean revision size {:.1} across {} nodes (bounds [25, 300])",
        st.mean_revision_size, st.nodes
    );
}
