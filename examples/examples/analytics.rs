//! Real-time analytics over a live index: writers ingest events while an
//! analytics thread computes windowed aggregates on consistent snapshots
//! — the "scalable real-time analytics" use case the paper positions
//! Jiffy against (KiWi's motivating workload, §1/§2).
//!
//! Keys encode (sensor id, sequence); the analyst scans each sensor's
//! key range on one snapshot, so per-sensor aggregates are mutually
//! consistent without ever blocking ingestion.
//!
//! ```sh
//! cargo run --release -p jiffy-examples --example analytics
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use jiffy::JiffyMap;

const SENSORS: u64 = 8;
const SEQ_SPACE: u64 = 1 << 20;

fn key(sensor: u64, seq: u64) -> u64 {
    sensor * SEQ_SPACE + seq
}

fn main() {
    let store: JiffyMap<u64, u64> = JiffyMap::new();
    let stop = AtomicBool::new(false);
    let ingested = AtomicU64::new(0);

    std::thread::scope(|s| {
        // Ingestion: each writer appends monotonically increasing
        // readings for its sensors.
        for w in 0..2u64 {
            let store = &store;
            let stop = &stop;
            let ingested = &ingested;
            s.spawn(move || {
                let mut seq = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for sensor in (w * SENSORS / 2)..((w + 1) * SENSORS / 2) {
                        // Reading value: deterministic ramp + sensor bias,
                        // so aggregates are checkable.
                        store.put(key(sensor, seq), sensor * 1000 + (seq % 100));
                    }
                    ingested.fetch_add(SENSORS / 2, Ordering::Relaxed);
                    seq += 1;
                }
            });
        }
        // Analytics: one consistent snapshot per round; per-sensor counts
        // must be equal-ish (all sensors written in lockstep per writer),
        // proving the snapshot is a single point in time.
        let store_ref = &store;
        let stop_ref = &stop;
        s.spawn(move || {
            for round in 0..10 {
                std::thread::sleep(Duration::from_millis(150));
                let snap = store_ref.snapshot();
                let mut counts = [0u64; SENSORS as usize];
                let mut sums = [0u64; SENSORS as usize];
                for sensor in 0..SENSORS {
                    let lo = key(sensor, 0);
                    let hi = key(sensor + 1, 0);
                    for (_, v) in snap.range_bounded(&lo, &hi) {
                        counts[sensor as usize] += 1;
                        sums[sensor as usize] += v;
                    }
                }
                // Writers advance both their sensors in lockstep: within
                // one writer's pair of sensors, a consistent snapshot can
                // differ by at most one in-flight event.
                for pair in 0..(SENSORS / 2) as usize {
                    let a = 2 * pair;
                    let b = 2 * pair + 1;
                    let diff = counts[a].abs_diff(counts[b]);
                    assert!(
                        diff <= 1,
                        "round {round}: sensors {a}/{b} counts {}/{} diverged — snapshot not atomic",
                        counts[a],
                        counts[b]
                    );
                }
                println!(
                    "round {round}: snapshot v{} — per-sensor counts {:?}",
                    snap.version(),
                    counts
                );
                let _ = sums;
            }
            stop_ref.store(true, Ordering::Relaxed);
        });
    });

    println!(
        "ingested ~{} events while analytics ran on consistent snapshots; structure: {:?}",
        ingested.load(Ordering::Relaxed),
        store.debug_stats()
    );
}
