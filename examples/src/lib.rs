//! Runnable examples for the Jiffy reproduction.
//!
//! Each file under `examples/` is a standalone program exercising one facet
//! of the public API:
//!
//! * `quickstart` — put/get/remove, atomic batches, snapshots, range scans.
//! * `adaptive` — watch the §3.3.6 autoscaler adjust revision sizes.
//! * `analytics` — long scans on a frozen snapshot while writers proceed.
//! * `bank_ledger` — atomic multi-key transfers via batch updates.
//!
//! Run one with:
//!
//! ```sh
//! cargo run --release -p jiffy-examples --example quickstart
//! ```
