//! Shared nothing: each example is a standalone binary (see ../*.rs).
